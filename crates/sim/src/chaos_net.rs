//! Chaos-net: the three robustness seams composed into one scenario.
//!
//! A real-crypto deployment is driven through every fault machine the
//! stack owns, at once:
//!
//! 1. **Lossy link** — every ingest and search crosses the framed
//!    protocol over [`duplex_faulty`] under a seeded [`LinkFaultPlan`]
//!    that drops, corrupts and duplicates frames. The resilient client
//!    reconnects and retries; the endpoint's idempotency window keeps
//!    ingest exactly-once.
//! 2. **Replicated shards** — the acknowledged corpus fans out to a
//!    [`ShardRouter`] with `R` replicas per partition. Partition 0's
//!    primary breaker is forced open before every wave, so each wave
//!    *must* fail over to a follower — and the gathered results are
//!    asserted byte-equal to a fault-free `R = 1` oracle router over
//!    the same corpus (failover changes latency, never answers). The
//!    framed search's hit set is asserted equal to the router's, so
//!    the lossy link and the replicated gather agree document for
//!    document.
//! 3. **Mid-write crashes** — a seeded [`CrashFuse`] sweep kills paged
//!    stores at budgeted disk units; every reopen must succeed and
//!    every acknowledged put must survive, counted into the report.
//!
//! Everything is timed on one shared [`VirtualClock`] and counted into
//! one [`MetricsRegistry`], so a same-seed run reproduces
//! [`ChaosNetReport::canonical_bytes`] — metrics snapshot included —
//! byte for byte.

use apks_authz::TrustedAuthority;
use apks_client::{
    duplex_faulty, ApksClient, LinkFaultConfig, LinkFaultPlan, ServerEndpoint, TransportCost,
};
use apks_cloud::{CloudServer, ShardConfig, ShardRouter};
use apks_core::fault::{FaultConfig, FaultPlan, RetryPolicy, VirtualClock};
use apks_core::{
    ApksSystem, Budget, Deadline, EncryptedIndex, FieldValue, Query, QueryPolicy, Record, Schema,
};
use apks_curve::CurveParams;
use apks_store::crash::CrashFuse;
use apks_store::{PagedStore, StoreConfig, StoreError};
use apks_telemetry::{Clock, MetricsRegistry, MetricsSnapshot};
use apks_wire::WireCtx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// The keyword catalog records and capabilities draw from.
const ILLNESSES: [&str; 4] = ["flu", "cancer", "diabetes", "asthma"];

/// Chaos-net scenario knobs. All times are virtual ticks.
#[derive(Clone, Debug)]
pub struct ChaosNetConfig {
    /// Records ingested over the lossy link (real crypto — keep small).
    pub docs: usize,
    /// Partitions in the replicated deployment.
    pub partitions: usize,
    /// Replicas per partition (≥ 2 exercises failover).
    pub replication: usize,
    /// Search waves run after ingest.
    pub searches: usize,
    /// Link fault rate: frames dropped (permille).
    pub drop_permille: u32,
    /// Link fault rate: one wire byte flipped (permille).
    pub corrupt_permille: u32,
    /// Link fault rate: frame delivered twice (permille).
    pub duplicate_permille: u32,
    /// Distinct crash workloads swept.
    pub crash_workloads: u64,
    /// Crash budgets swept per workload, spread over its unit range.
    pub crash_points_per_workload: u64,
    /// Modeled service ticks charged per scanned document.
    pub doc_cost_ticks: u64,
    /// RNG seed: records, capabilities, link schedule, crash points.
    pub seed: u64,
    /// Run the fault-free single-replica oracle router and assert the
    /// replicated gather is byte-equal to it, wave by wave.
    pub verify_oracle: bool,
}

impl Default for ChaosNetConfig {
    fn default() -> ChaosNetConfig {
        ChaosNetConfig {
            docs: 10,
            partitions: 2,
            replication: 2,
            searches: 4,
            drop_permille: 150,
            corrupt_permille: 120,
            duplicate_permille: 120,
            crash_workloads: 2,
            crash_points_per_workload: 12,
            doc_cost_ticks: 3,
            seed: 1,
            verify_oracle: true,
        }
    }
}

/// One search wave's outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosQueryRecord {
    /// Wave ordinal.
    pub wave: u64,
    /// Index into the illness catalog queried.
    pub keyword: u64,
    /// Matching document ids, ascending (set semantics — the router
    /// merges in partition order, the framed path in corpus order; the
    /// *set* is the invariant).
    pub hits: Vec<u64>,
    /// Replica that served partition 0 (≥ 1 proves the forced
    /// failover actually happened).
    pub partition0_replica: u64,
    /// The wave's straggler latency in virtual ticks.
    pub straggler_ticks: u64,
}

/// Outcome of a chaos-net run.
#[derive(Clone, Debug)]
pub struct ChaosNetReport {
    /// Records acknowledged over the lossy link (== docs requested;
    /// the retry budget must cover the configured fault rates).
    pub docs: u64,
    /// Partitions in the replicated deployment.
    pub partitions: u64,
    /// Replicas per partition.
    pub replication: u64,
    /// Search waves run.
    pub searches: u64,
    /// Client reconnects forced by the lossy link.
    pub reconnects: u64,
    /// Duplicated/retried ingest frames absorbed by the idempotency
    /// window (exactly-once proof: corpus size stayed `docs`).
    pub dedup_hits: u64,
    /// Frames the link dropped, client+server directions combined.
    pub frames_dropped: u64,
    /// Frames the link corrupted.
    pub frames_corrupted: u64,
    /// Frames the link duplicated.
    pub frames_duplicated: u64,
    /// Partition failovers across all waves (breaker-forced).
    pub failovers: u64,
    /// Total hits across all waves.
    pub hits_total: u64,
    /// Per-wave ledger.
    pub queries: Vec<ChaosQueryRecord>,
    /// Every wave's replicated gather was byte-equal to the fault-free
    /// single-replica oracle router.
    pub oracle_verified: bool,
    /// Every wave's framed lossy-link hit set equaled the router's.
    pub framed_verified: bool,
    /// Seeded crash points swept over the paged store.
    pub crash_points: u64,
    /// Acknowledged puts checked across all crash recoveries.
    pub acked_puts_checked: u64,
    /// Acknowledged puts missing after recovery (the contract: 0).
    pub acked_puts_lost: u64,
    /// Store reopens that failed after a crash (the contract: 0).
    pub reopen_failures: u64,
    /// Final shared virtual-clock reading.
    pub virtual_ticks: u64,
    /// Deployment metrics (`cloud.replica.*`, `wire.*`, `chaos.sim.*`).
    /// Deterministic; part of the canonical bytes.
    pub metrics: MetricsSnapshot,
}

impl ChaosNetReport {
    /// Canonical byte encoding of every deterministic field. Same-seed
    /// runs must reproduce this byte for byte, metrics included.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for v in [
            self.docs,
            self.partitions,
            self.replication,
            self.searches,
            self.reconnects,
            self.dedup_hits,
            self.frames_dropped,
            self.frames_corrupted,
            self.frames_duplicated,
            self.failovers,
            self.hits_total,
            u64::from(self.oracle_verified),
            u64::from(self.framed_verified),
            self.crash_points,
            self.acked_puts_checked,
            self.acked_puts_lost,
            self.reopen_failures,
            self.virtual_ticks,
            self.queries.len() as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for q in &self.queries {
            for v in [
                q.wave,
                q.keyword,
                q.partition0_replica,
                q.straggler_ticks,
                q.hits.len() as u64,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for &id in &q.hits {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.metrics.canonical_bytes());
        out
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds one shard server against the shared deployment telemetry.
fn shard_server(
    ta: &TrustedAuthority,
    metrics: &Arc<MetricsRegistry>,
    clock: &Arc<VirtualClock>,
) -> Arc<CloudServer> {
    let s = Arc::new(CloudServer::with_telemetry(
        ta.system().clone(),
        ta.public_key().clone(),
        ta.ibs_params().clone(),
        Arc::clone(metrics),
        Arc::clone(clock) as Arc<dyn Clock>,
    ));
    s.register_authority("ta");
    s
}

/// Runs the chaos-net scenario. `dir` hosts the crash-sweep stores
/// (created fresh; pre-existing content under `dir` is removed).
///
/// # Errors
///
/// Store I/O failures from the crash sweep's scaffolding (injected
/// crashes are expected and recovered, never returned).
///
/// # Panics
///
/// Panics when a robustness invariant breaks: an ingest the retry
/// budget could not land (raise the budget or lower the fault rates),
/// a replicated wave that diverges from the single-replica oracle, a
/// framed hit set that disagrees with the router, a crash recovery
/// that loses an acknowledged put, or a wave that fails to fail over.
pub fn run_chaos_net(config: &ChaosNetConfig, dir: &Path) -> Result<ChaosNetReport, StoreError> {
    assert!(config.partitions > 0, "need at least one partition");
    assert!(
        config.replication >= 2,
        "chaos-net exists to exercise failover"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::builder()
        .flat_field("illness", 1)
        .flat_field("sex", 1)
        .build()
        .expect("static schema");
    let sys = ApksSystem::new(CurveParams::fast(), schema);
    let ta = TrustedAuthority::setup(sys, &mut rng);

    // one clock, one registry: the gateway, the lossy link and the
    // replicated router all account into the same deterministic ledger
    let metrics = Arc::new(MetricsRegistry::new());
    let clock = Arc::new(VirtualClock::new());

    // -- seam 1: exactly-once ingest over the lossy framed link ---------
    let gateway = shard_server(&ta, &metrics, &clock);
    let link = LinkFaultConfig {
        seed: config.seed ^ 0x4c49_4e4b, // "LINK"
        drop_permille: config.drop_permille,
        corrupt_permille: config.corrupt_permille,
        duplicate_permille: config.duplicate_permille,
        ..LinkFaultConfig::default()
    };
    let ctx = WireCtx::new(CurveParams::fast());
    let (client_end, server_end) = duplex_faulty(
        clock.clone(),
        TransportCost {
            ticks_per_frame: 2,
            ticks_per_byte: 0,
        },
        LinkFaultPlan::new(link),
    );
    let mut client = ApksClient::new(ctx.clone(), client_end);
    let mut endpoint = ServerEndpoint::new(
        ctx,
        gateway.clone(),
        server_end,
        FaultPlan::new(FaultConfig::default()),
        RetryPolicy::default(),
        clock.clone(),
    );
    let policy = RetryPolicy::new(8, 2, 16, 3).with_jitter_seed(config.seed ^ 0x52_4e47);

    let mut indexes: Vec<EncryptedIndex> = Vec::with_capacity(config.docs);
    for i in 0..config.docs {
        let illness = ILLNESSES[(mix(config.seed ^ i as u64) % ILLNESSES.len() as u64) as usize];
        let sex = if mix(config.seed ^ (i as u64) << 32).is_multiple_of(2) {
            "female"
        } else {
            "male"
        };
        let rec = Record::new(vec![FieldValue::text(illness), FieldValue::text(sex)]);
        let idx = ta
            .system()
            .gen_index(ta.public_key(), &rec, &mut rng)
            .expect("index generation");
        let ids = client
            .upload_resilient(&mut endpoint, "chaos-owner", vec![idx.clone()], &policy)
            .expect("retry budget must cover the configured link fault rates");
        assert_eq!(ids, vec![i as u64], "acked ids are contiguous");
        indexes.push(idx);
    }
    assert_eq!(
        gateway.len(),
        config.docs,
        "ingest over the lossy link must stay exactly-once"
    );

    // -- seam 2: fan the acknowledged corpus out to the replicated
    //    router (shared telemetry) and the single-replica oracle -------
    let replicated = {
        let shards = (0..config.partitions * config.replication)
            .map(|_| shard_server(&ta, &metrics, &clock))
            .collect();
        let cfg = ShardConfig {
            replication: config.replication,
            ..ShardConfig::default()
        };
        ShardRouter::new(shards, cfg, clock.clone(), metrics.clone())
    };
    let oracle = config.verify_oracle.then(|| {
        let oracle_clock = Arc::new(VirtualClock::new());
        let oracle_metrics = Arc::new(MetricsRegistry::new());
        let shards = (0..config.partitions)
            .map(|_| shard_server(&ta, &oracle_metrics, &oracle_clock))
            .collect();
        ShardRouter::new(shards, ShardConfig::default(), oracle_clock, oracle_metrics)
    });
    for idx in &indexes {
        replicated.upload(idx.clone());
        if let Some(oracle) = &oracle {
            oracle.upload(idx.clone());
        }
    }

    // -- search waves: forced failover, triple-verified -----------------
    let scan_plan = FaultPlan::new(FaultConfig::default());
    let scan_policy = RetryPolicy::default();
    let threshold = ShardConfig::default().breaker.failure_threshold;
    let mut queries = Vec::with_capacity(config.searches);
    let mut oracle_verified = config.verify_oracle;
    let mut framed_verified = true;
    for wave in 0..config.searches {
        let keyword =
            (mix(config.seed.wrapping_mul(31) ^ wave as u64) % ILLNESSES.len() as u64) as usize;
        let cap = ta
            .issue_capability(
                &Query::new().equals("illness", ILLNESSES[keyword]),
                &QueryPolicy::default(),
                &mut rng,
            )
            .expect("capability issue");

        // force partition 0's primary open: this wave MUST fail over
        for _ in 0..threshold {
            replicated.breaker(0).record_failure(clock.now());
        }
        let budget = Budget::unlimited();
        let batch = replicated
            .search_batched(
                &[(&cap, Deadline::NEVER, &budget)],
                &scan_plan,
                &scan_policy,
                config.doc_cost_ticks,
            )
            .expect("registered issuer");
        assert!(
            batch.shards[0].replica >= 1,
            "partition 0's forced-open primary must fail the wave over"
        );

        if let Some(oracle) = &oracle {
            let oracle_budget = Budget::unlimited();
            let ob = oracle
                .search_batched(
                    &[(&cap, Deadline::NEVER, &oracle_budget)],
                    &scan_plan,
                    &scan_policy,
                    config.doc_cost_ticks,
                )
                .expect("registered issuer");
            assert_eq!(
                batch.results, ob.results,
                "replicated gather diverged from the single-replica oracle"
            );
            oracle_verified &= batch.results == ob.results;
        }

        // the same capability over the lossy framed link: the gateway
        // holds the identical corpus, so the hit SET must agree
        let framed = client
            .search_resilient(
                &mut endpoint,
                &cap,
                u64::MAX,
                u64::MAX,
                config.doc_cost_ticks,
                &policy,
            )
            .expect("retry budget must cover the configured link fault rates");
        let mut hits = batch.results[0].matches.clone();
        hits.sort_unstable();
        let mut framed_hits = framed.matches.clone();
        framed_hits.sort_unstable();
        assert_eq!(
            framed_hits, hits,
            "framed lossy-link hit set diverged from the replicated gather"
        );
        framed_verified &= framed_hits == hits;

        metrics.add("chaos.sim.waves", 1);
        metrics.add("chaos.sim.hits", hits.len() as u64);
        queries.push(ChaosQueryRecord {
            wave: wave as u64,
            keyword: keyword as u64,
            hits,
            partition0_replica: batch.shards[0].replica as u64,
            straggler_ticks: batch.straggler_ticks,
        });
    }

    // -- seam 3: seeded crash sweep over the paged store ----------------
    let sweep = run_crash_sweep(config, dir)?;
    metrics.add("chaos.sim.crash_points", sweep.crash_points);
    metrics.add("chaos.sim.acked_puts_checked", sweep.acked_puts_checked);

    let client_stats = client.transport_stats();
    let server_stats = endpoint.transport_stats();
    let snapshot = metrics.snapshot();
    let report = ChaosNetReport {
        docs: config.docs as u64,
        partitions: config.partitions as u64,
        replication: config.replication as u64,
        searches: config.searches as u64,
        reconnects: client.reconnects(),
        dedup_hits: snapshot.counter("wire.server.dedup_hits").unwrap_or(0),
        frames_dropped: client_stats.frames_dropped + server_stats.frames_dropped,
        frames_corrupted: client_stats.frames_corrupted + server_stats.frames_corrupted,
        frames_duplicated: client_stats.frames_duplicated + server_stats.frames_duplicated,
        failovers: snapshot.counter("cloud.replica.failovers").unwrap_or(0),
        hits_total: queries.iter().map(|q| q.hits.len() as u64).sum(),
        queries,
        oracle_verified,
        framed_verified,
        crash_points: sweep.crash_points,
        acked_puts_checked: sweep.acked_puts_checked,
        acked_puts_lost: sweep.acked_puts_lost,
        reopen_failures: sweep.reopen_failures,
        virtual_ticks: clock.now(),
        metrics: snapshot,
    };
    Ok(report)
}

/// What the crash sweep observed (the loss fields stay 0 or the sweep
/// panics — they are in the report so the artifact states the contract
/// explicitly).
struct SweepOutcome {
    crash_points: u64,
    acked_puts_checked: u64,
    acked_puts_lost: u64,
    reopen_failures: u64,
}

/// One scripted store operation of the crash workload.
enum CrashOp {
    Put { doc: u64, payload: Vec<u8> },
    Delete { doc: u64 },
}

/// The deterministic crash workload for one seed: 32 cell ops over 12
/// docs, ~1 in 6 a delete.
fn crash_workload(seed: u64) -> Vec<CrashOp> {
    (0..32u64)
        .map(|i| {
            let h = mix(seed.wrapping_mul(0x9e37).wrapping_add(i));
            let doc = h % 12;
            if h % 6 == 5 {
                CrashOp::Delete { doc }
            } else {
                let len = 4 + (mix(h) % 21) as usize;
                CrashOp::Put {
                    doc,
                    payload: vec![(h % 251) as u8; len],
                }
            }
        })
        .collect()
}

fn crash_store_config() -> StoreConfig {
    StoreConfig {
        page_size: 256,
        segment_max_bytes: 640,
    }
}

/// Drives the workload with a seal every 8 ops and a compaction after
/// op 24. Returns (map history, durability watermark): `history[m]` is
/// the live-doc map after `m` applied ops; the watermark is the op
/// count of the last acknowledged seal/compact.
fn drive_crash_workload(
    store: &mut PagedStore,
    ops: &[CrashOp],
) -> (Vec<HashMap<u64, Vec<u8>>>, usize) {
    let mut history = vec![HashMap::new()];
    let mut watermark = 0usize;
    let mut applied = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let res = match op {
            CrashOp::Put { doc, payload } => store.put(*doc, payload.clone()),
            CrashOp::Delete { doc } => store.delete(*doc),
        };
        match res {
            Ok(()) => {
                let mut next = history[applied].clone();
                match op {
                    CrashOp::Put { doc, payload } => {
                        next.insert(*doc, payload.clone());
                    }
                    CrashOp::Delete { doc } => {
                        next.remove(doc);
                    }
                }
                history.push(next);
                applied += 1;
            }
            Err(StoreError::Crashed) => return (history, watermark),
            Err(e) => panic!("non-crash error from chaos workload: {e:?}"),
        }
        if (i + 1) % 8 == 0 || i + 1 == 25 {
            let res = if i + 1 == 25 {
                store.compact().map(|_| ())
            } else {
                store.seal()
            };
            match res {
                Ok(()) => watermark = applied,
                Err(StoreError::Crashed) => return (history, watermark),
                Err(e) => panic!("non-crash error at chaos boundary: {e:?}"),
            }
        }
    }
    match store.seal() {
        Ok(()) => watermark = applied,
        Err(StoreError::Crashed) => {}
        Err(e) => panic!("non-crash error at final chaos seal: {e:?}"),
    }
    (history, watermark)
}

/// Sweeps seeded crash budgets over `crash_workloads` workloads: each
/// budget kills the store mid-write, the reopen must recover every
/// acknowledged put.
fn run_crash_sweep(config: &ChaosNetConfig, dir: &Path) -> Result<SweepOutcome, StoreError> {
    let mut outcome = SweepOutcome {
        crash_points: 0,
        acked_puts_checked: 0,
        acked_puts_lost: 0,
        reopen_failures: 0,
    };
    for w in 0..config.crash_workloads {
        let seed = config.seed.wrapping_mul(0x5DEECE66D).wrapping_add(w);
        let digest = {
            let mut d = [0u8; 32];
            d[..8].copy_from_slice(&mix(seed).to_le_bytes());
            d
        };
        // dry run: learn the workload's total disk-unit count
        let total = {
            let dry = dir.join(format!("crash-dry-{w}"));
            let _ = std::fs::remove_dir_all(&dry);
            let mut store = PagedStore::open(&dry, digest, crash_store_config())?;
            let fuse = CrashFuse::unlimited();
            store.set_crash_fuse(fuse.clone());
            let (_, watermark) = drive_crash_workload(&mut store, &crash_workload(seed));
            assert_eq!(watermark, 32, "dry run must complete");
            drop(store);
            let _ = std::fs::remove_dir_all(&dry);
            fuse.consumed()
        };
        for p in 0..config.crash_points_per_workload {
            // budgets spread over the unit range, never 0 (a store that
            // cannot even open proves nothing about recovery)
            let budget = 1 + p * total / config.crash_points_per_workload;
            let sweep_dir = dir.join(format!("crash-w{w}-p{p}"));
            let _ = std::fs::remove_dir_all(&sweep_dir);
            let (history, watermark) = {
                let mut store = PagedStore::open(&sweep_dir, digest, crash_store_config())?;
                store.set_crash_fuse(CrashFuse::armed(budget));
                drive_crash_workload(&mut store, &crash_workload(seed))
                // drop: the tripped fuse refuses the buffered flush,
                // like a dead process's page cache
            };
            outcome.crash_points += 1;
            // reopen must succeed — an error here is a broken contract
            // (the report's `reopen_failures` stays 0 because this
            // panics instead of counting; the field states the contract)
            let mut store = PagedStore::open(&sweep_dir, digest, crash_store_config())
                .unwrap_or_else(|e| panic!("chaos crash-w{w}-p{p}: reopen failed: {e:?}"));
            let recovered: HashMap<u64, Vec<u8>> = store
                .doc_order()
                .to_vec()
                .into_iter()
                .map(|id| {
                    let payload = store
                        .get(id)
                        .expect("indexed doc must read back")
                        .expect("indexed doc must be live");
                    (id, payload)
                })
                .collect();
            // recovery must land on a real oracle prefix ≥ watermark
            let landed = (watermark..history.len()).find(|&m| history[m] == recovered);
            assert!(
                landed.is_some(),
                "chaos crash-w{w}-p{p}: recovered state matches no oracle prefix ≥ watermark \
                 {watermark} (history len {}, recovered {} docs)",
                history.len(),
                recovered.len()
            );
            let m = landed.unwrap_or(watermark);
            for (doc, payload) in &history[watermark] {
                if history[m].get(doc) == Some(payload) {
                    outcome.acked_puts_checked += 1;
                    assert_eq!(
                        recovered.get(doc),
                        Some(payload),
                        "chaos crash-w{w}-p{p}: acknowledged put {doc} lost"
                    );
                }
            }
            drop(store);
            let _ = std::fs::remove_dir_all(&sweep_dir);
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("apks-chaos-net-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small() -> ChaosNetConfig {
        ChaosNetConfig {
            docs: 6,
            searches: 2,
            crash_workloads: 1,
            crash_points_per_workload: 6,
            ..ChaosNetConfig::default()
        }
    }

    #[test]
    fn chaos_net_composes_all_three_seams() {
        let dir = tmp("compose");
        let report = run_chaos_net(&small(), &dir).unwrap();
        assert_eq!(report.docs, 6);
        assert!(report.oracle_verified);
        assert!(report.framed_verified);
        // the forced-open primary made every wave fail over
        assert_eq!(report.failovers, report.searches);
        assert!(report.queries.iter().all(|q| q.partition0_replica >= 1));
        // the lossy link actually did damage this run survived
        assert!(
            report.frames_dropped + report.frames_corrupted + report.frames_duplicated > 0,
            "the default rates must mangle some frames"
        );
        assert_eq!(report.acked_puts_lost, 0);
        assert_eq!(report.reopen_failures, 0);
        assert_eq!(report.crash_points, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_seed_chaos_runs_are_byte_identical() {
        let d1 = tmp("det1");
        let d2 = tmp("det2");
        let a = run_chaos_net(&small(), &d1).unwrap();
        let b = run_chaos_net(&small(), &d2).unwrap();
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d2);
    }
}
