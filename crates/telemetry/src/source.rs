//! Thread-local at-source counters for the pairing layer.
//!
//! The dpvs/hpe crates increment these at the exact call sites that
//! perform pairings and Miller loops. The counters are thread-local on
//! purpose: a process-global atomic would be polluted by whatever else
//! runs concurrently (parallel scan workers of *another* search,
//! parallel tests), while a per-thread delta collected by
//! [`measure`] is attributable — each scan worker measures its own
//! work and the scan sums the deltas, which is deterministic for any
//! thread count.

use std::cell::Cell;
use std::ops::{Add, AddAssign, Sub};

thread_local! {
    static PAIRINGS: Cell<u64> = const { Cell::new(0) };
    static MILLER_LOOPS: Cell<u64> = const { Cell::new(0) };
    static PREDICATE_EVALS: Cell<u64> = const { Cell::new(0) };
}

/// A reading (or delta) of the source counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SourceCounts {
    /// Pairing evaluations (one per coordinate of a multi-pairing).
    pub pairings: u64,
    /// Miller loops run (plain pairings run one each; prepared pairings
    /// run none — their loops were spent at preparation time).
    pub miller_loops: u64,
    /// Predicate evaluations (HPE decrypt/test calls).
    pub predicate_evals: u64,
}

impl Add for SourceCounts {
    type Output = SourceCounts;
    fn add(self, rhs: SourceCounts) -> SourceCounts {
        SourceCounts {
            pairings: self.pairings + rhs.pairings,
            miller_loops: self.miller_loops + rhs.miller_loops,
            predicate_evals: self.predicate_evals + rhs.predicate_evals,
        }
    }
}

impl AddAssign for SourceCounts {
    fn add_assign(&mut self, rhs: SourceCounts) {
        *self = *self + rhs;
    }
}

impl Sub for SourceCounts {
    type Output = SourceCounts;
    fn sub(self, rhs: SourceCounts) -> SourceCounts {
        SourceCounts {
            pairings: self.pairings - rhs.pairings,
            miller_loops: self.miller_loops - rhs.miller_loops,
            predicate_evals: self.predicate_evals - rhs.predicate_evals,
        }
    }
}

/// Records `n` pairing evaluations on this thread.
pub fn record_pairings(n: u64) {
    PAIRINGS.with(|c| c.set(c.get() + n));
}

/// Records `n` Miller loops on this thread.
pub fn record_miller_loops(n: u64) {
    MILLER_LOOPS.with(|c| c.set(c.get() + n));
}

/// Records `n` predicate evaluations on this thread.
pub fn record_predicate_evals(n: u64) {
    PREDICATE_EVALS.with(|c| c.set(c.get() + n));
}

/// This thread's running totals since it started.
pub fn totals() -> SourceCounts {
    SourceCounts {
        pairings: PAIRINGS.with(Cell::get),
        miller_loops: MILLER_LOOPS.with(Cell::get),
        predicate_evals: PREDICATE_EVALS.with(Cell::get),
    }
}

/// Runs `f` and returns its result together with the source counts it
/// caused **on this thread**. Work `f` spawns onto other threads must
/// be measured there (each scan worker wraps its own part).
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, SourceCounts) {
    let before = totals();
    let out = f();
    (out, totals() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_the_delta() {
        let (out, counts) = measure(|| {
            record_pairings(5);
            record_miller_loops(2);
            record_predicate_evals(1);
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(
            counts,
            SourceCounts {
                pairings: 5,
                miller_loops: 2,
                predicate_evals: 1
            }
        );
        // a second measurement starts from the new baseline
        let ((), counts) = measure(|| record_pairings(1));
        assert_eq!(counts.pairings, 1);
        assert_eq!(counts.miller_loops, 0);
    }

    #[test]
    fn deltas_are_per_thread() {
        let ((), counts) = measure(|| {
            std::thread::spawn(|| record_pairings(100)).join().unwrap();
        });
        assert_eq!(counts.pairings, 0, "other threads' work is not charged");
        // ... but the worker can measure its own delta and hand it back
        let worker = std::thread::spawn(|| measure(|| record_pairings(3)).1);
        assert_eq!(worker.join().unwrap().pairings, 3);
    }

    #[test]
    fn counts_add_and_subtract() {
        let a = SourceCounts {
            pairings: 3,
            miller_loops: 2,
            predicate_evals: 1,
        };
        let mut sum = a;
        sum += a;
        assert_eq!(sum.pairings, 6);
        assert_eq!(sum - a, a);
    }
}
