//! Operational telemetry for the APKS stack.
//!
//! The paper's §VI traffic-monitoring defence presumes the proxy can
//! *measure* per-client behaviour, and a deployed corpus scan is only
//! debuggable if pairing counts and latencies are recorded where they
//! happen. This crate is that layer, shared by every other crate:
//!
//! * [`Counter`] — a relaxed atomic event counter;
//! * [`Histogram`] — fixed log₂ buckets with a lock-free record path;
//! * [`Span`] — a scoped timer charging elapsed ticks of an injectable
//!   [`Clock`] to a histogram ([`WallClock`] in production, the sim's
//!   virtual clock in chaos runs, so seeded runs reproduce their
//!   timings byte for byte);
//! * [`MetricsRegistry`] — a name-keyed registry whose
//!   [`MetricsSnapshot`] has a stable field order and a canonical byte
//!   encoding, like `SimReport`;
//! * [`source`] — thread-local counters the pairing layer increments at
//!   the call site, collected per worker as deltas so parallel scans
//!   (and parallel tests) never share mutable state.
//!
//! The crate deliberately depends on nothing, not even the workspace
//! shims: `std::sync` primitives only.

pub mod snapshot;
pub mod source;

pub use snapshot::{HistogramSnapshot, Metric, MetricsSnapshot, SnapshotDecodeError};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A monotone tick source. Ticks are microseconds under [`WallClock`]
/// and virtual ticks under the fault layer's `VirtualClock`; code that
/// charges spans never needs to know which.
pub trait Clock: Send + Sync {
    /// The current tick.
    fn now_ticks(&self) -> u64;
}

/// Microseconds since the first reading in this process.
///
/// Anchoring at first use keeps the value comfortably inside `u64`
/// and makes deltas exact; absolute values are meaningless by design
/// (only spans are recorded).
#[derive(Clone, Copy, Debug, Default)]
pub struct WallClock;

static WALL_EPOCH: OnceLock<Instant> = OnceLock::new();

impl Clock for WallClock {
    fn now_ticks(&self) -> u64 {
        let epoch = *WALL_EPOCH.get_or_init(Instant::now);
        Instant::now().duration_since(epoch).as_micros() as u64
    }
}

/// A monotone event counter (relaxed atomics: counts are statistics,
/// not synchronization).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket 0 holds the value 0; bucket
/// `b ≥ 1` holds values with bit length `b` (i.e. `[2^(b−1), 2^b)`),
/// and the last bucket absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// The bucket index for `value` under the log₂ layout above.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `b` (used when rendering
/// approximate quantiles). The absorbing last bucket — and any
/// out-of-range index — reports `u64::MAX`, which renderers show as
/// "max" rather than a 20-digit literal.
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        // b < 31 here, but stay shift-safe if the layout ever widens
        1u64.checked_shl(b as u32).map_or(u64::MAX, |v| v - 1)
    }
}

/// A fixed-bucket latency histogram. Recording is three relaxed
/// `fetch_add`s — no locks, safe from any number of scan workers.
#[derive(Debug, Default)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A scoped timer: charges the ticks between construction and
/// [`Span::finish`] (or drop) to a histogram.
pub struct Span<'a> {
    clock: &'a dyn Clock,
    hist: &'a Histogram,
    start: u64,
    done: bool,
}

impl<'a> Span<'a> {
    /// Starts timing against `clock`.
    pub fn start(clock: &'a dyn Clock, hist: &'a Histogram) -> Span<'a> {
        Span {
            clock,
            hist,
            start: clock.now_ticks(),
            done: false,
        }
    }

    /// Ticks elapsed so far.
    pub fn elapsed(&self) -> u64 {
        self.clock.now_ticks().saturating_sub(self.start)
    }

    /// Records the elapsed ticks and returns them.
    pub fn finish(mut self) -> u64 {
        let e = self.elapsed();
        self.hist.record(e);
        self.done = true;
        e
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.hist.record(self.elapsed());
        }
    }
}

/// A name-keyed registry of counters and histograms.
///
/// Registration takes a write lock once per name; the returned handles
/// are `Arc`s whose hot paths are pure atomics. `BTreeMap` keys give
/// [`MetricsRegistry::snapshot`] its stable order for free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registered on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().expect("registry poisoned").get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().expect("registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, registered on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().expect("registry poisoned").get(name) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().expect("registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Convenience: `counter(name).add(n)`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Convenience: `histogram(name).record(value)`.
    pub fn record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// A point-in-time snapshot of every metric, sorted by name
    /// (counters before histograms on a name collision).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self.counters.read().expect("registry poisoned");
        let histograms = self.histograms.read().expect("registry poisoned");
        let mut entries = Vec::with_capacity(counters.len() + histograms.len());
        for (name, c) in counters.iter() {
            entries.push((name.clone(), Metric::Counter(c.get())));
        }
        for (name, h) in histograms.iter() {
            entries.push((name.clone(), Metric::Histogram(h.snapshot())));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.tag().cmp(&b.1.tag())));
        MetricsSnapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1 << 29), 30);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // every bucket's upper bound lands in that bucket
        for b in 0..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper_bound(b)), b, "bucket {b}");
        }
    }

    #[test]
    fn bucket_boundaries_at_powers_of_two_and_extremes() {
        // 2^k and 2^k − 1 straddle the bucket edge for every in-range k
        for k in 1..HISTOGRAM_BUCKETS - 2 {
            let edge = 1u64 << k;
            assert_eq!(bucket_index(edge), k + 1, "2^{k} opens bucket {}", k + 1);
            assert_eq!(bucket_index(edge - 1), k, "2^{k} − 1 closes bucket {k}");
        }
        // everything from 2^30 up is absorbed by the last bucket
        for v in [
            1u64 << 30,
            (1u64 << 31) - 1,
            1u64 << 31,
            1u64 << 62,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(bucket_index(v), HISTOGRAM_BUCKETS - 1, "value {v}");
        }
        // the absorbing bucket's bound saturates instead of shifting out
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS), u64::MAX);
        assert_eq!(bucket_upper_bound(usize::MAX), u64::MAX);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
    }

    #[test]
    fn huge_values_record_without_overflow() {
        let h = Histogram::new();
        h.record(1u64 << 62);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 2);
        // sum wraps are the caller's concern; the buckets must not panic
    }

    #[test]
    fn histogram_records() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[bucket_index(1000)], 1);
    }

    /// A settable test clock.
    struct TestClock(AtomicU64);
    impl Clock for TestClock {
        fn now_ticks(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn span_charges_clock_ticks() {
        let clock = TestClock(AtomicU64::new(10));
        let h = Histogram::new();
        let span = Span::start(&clock, &h);
        clock.0.store(17, Ordering::Relaxed);
        assert_eq!(span.elapsed(), 7);
        assert_eq!(span.finish(), 7);
        let s = h.snapshot();
        assert_eq!((s.count, s.sum), (1, 7));
        // drop path records too
        {
            let _span = Span::start(&clock, &h);
            clock.0.store(20, Ordering::Relaxed);
        }
        assert_eq!(h.snapshot().sum, 10);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock;
        let a = c.now_ticks();
        let b = c.now_ticks();
        assert!(b >= a);
    }

    #[test]
    fn registry_returns_shared_handles_and_sorted_snapshots() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(2);
        reg.counter("b.count").add(3);
        reg.add("a.count", 1);
        reg.record("c.hist", 9);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.count", "b.count", "c.hist"]);
        assert_eq!(snap.counter("b.count"), Some(5));
        assert_eq!(snap.histogram("c.hist").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }
}
