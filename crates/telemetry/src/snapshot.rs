//! Point-in-time metric snapshots with a canonical byte encoding.
//!
//! The chaos suite asserts byte-identity of whole reports across
//! same-seed runs, so the snapshot encoding must be a pure function of
//! the metric values: entries are sorted by name, every integer is a
//! little-endian `u64`, and the encoding round-trips through
//! [`MetricsSnapshot::from_canonical_bytes`].

use crate::{bucket_upper_bound, HISTOGRAM_BUCKETS};
use core::fmt;

/// A copied-out histogram state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts (log₂ layout — see
    /// [`crate::bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`), resolved to
    /// the containing bucket's upper edge.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return bucket_upper_bound(b);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// One metric's value inside a snapshot.
// snapshots are cold read-side values built once per render/export; the
// histogram variant's inline bucket array is not worth an indirection
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Metric {
    /// A counter reading.
    Counter(u64),
    /// A histogram state.
    Histogram(HistogramSnapshot),
}

const TAG_COUNTER: u64 = 0;
const TAG_HISTOGRAM: u64 = 1;

impl Metric {
    /// Encoding tag (also the tie-break sort key on name collisions).
    pub(crate) fn tag(&self) -> u64 {
        match self {
            Metric::Counter(_) => TAG_COUNTER,
            Metric::Histogram(_) => TAG_HISTOGRAM,
        }
    }
}

/// Why a canonical byte string failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotDecodeError {
    /// Input ended inside a field.
    Truncated,
    /// Unknown metric tag.
    BadTag(u64),
    /// A metric name was not UTF-8.
    BadName,
    /// Bytes left over after the declared entries.
    TrailingBytes,
}

impl fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotDecodeError::Truncated => write!(f, "snapshot bytes truncated"),
            SnapshotDecodeError::BadTag(t) => write!(f, "unknown metric tag {t}"),
            SnapshotDecodeError::BadName => write!(f, "metric name is not UTF-8"),
            SnapshotDecodeError::TrailingBytes => write!(f, "trailing bytes after snapshot"),
        }
    }
}

impl std::error::Error for SnapshotDecodeError {}

/// A point-in-time copy of a whole [`crate::MetricsRegistry`], sorted
/// by metric name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub(crate) entries: Vec<(String, Metric)>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from raw entries (sorted into canonical order).
    pub fn from_entries(mut entries: Vec<(String, Metric)>) -> MetricsSnapshot {
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.tag().cmp(&b.1.tag())));
        MetricsSnapshot { entries }
    }

    /// All entries in canonical (name-sorted) order.
    pub fn entries(&self) -> &[(String, Metric)] {
        &self.entries
    }

    /// True iff no metric was ever registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, m)| match m {
            Metric::Counter(v) if n == name => Some(*v),
            _ => None,
        })
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find_map(|(n, m)| match m {
            Metric::Histogram(h) if n == name => Some(h),
            _ => None,
        })
    }

    /// Canonical byte encoding: entry count, then per entry the name
    /// (length-prefixed), a tag, and the value — every integer a
    /// little-endian `u64`. Same metrics ⇒ same bytes, always.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_u64(&mut out, self.entries.len() as u64);
        for (name, metric) in &self.entries {
            push_u64(&mut out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
            push_u64(&mut out, metric.tag());
            match metric {
                Metric::Counter(v) => push_u64(&mut out, *v),
                Metric::Histogram(h) => {
                    push_u64(&mut out, h.count);
                    push_u64(&mut out, h.sum);
                    for &b in &h.buckets {
                        push_u64(&mut out, b);
                    }
                }
            }
        }
        out
    }

    /// Exact length of [`MetricsSnapshot::canonical_bytes`], computed
    /// without materializing the encoding — wire-size accounting uses
    /// this for its closed-form `serialized_size`.
    pub fn canonical_len(&self) -> usize {
        8 + self
            .entries
            .iter()
            .map(|(name, metric)| {
                8 + name.len()
                    + 8
                    + match metric {
                        Metric::Counter(_) => 8,
                        Metric::Histogram(_) => 16 + 8 * HISTOGRAM_BUCKETS,
                    }
            })
            .sum::<usize>()
    }

    /// Decodes bytes produced by [`MetricsSnapshot::canonical_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotDecodeError`] on malformed input.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Result<MetricsSnapshot, SnapshotDecodeError> {
        let mut pos = 0usize;
        let count = read_u64(bytes, &mut pos)?;
        let mut entries = Vec::new();
        for _ in 0..count {
            let name_len = read_u64(bytes, &mut pos)? as usize;
            let end = pos
                .checked_add(name_len)
                .filter(|&e| e <= bytes.len())
                .ok_or(SnapshotDecodeError::Truncated)?;
            let name = std::str::from_utf8(&bytes[pos..end])
                .map_err(|_| SnapshotDecodeError::BadName)?
                .to_string();
            pos = end;
            let metric = match read_u64(bytes, &mut pos)? {
                TAG_COUNTER => Metric::Counter(read_u64(bytes, &mut pos)?),
                TAG_HISTOGRAM => {
                    let count = read_u64(bytes, &mut pos)?;
                    let sum = read_u64(bytes, &mut pos)?;
                    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
                    for b in &mut buckets {
                        *b = read_u64(bytes, &mut pos)?;
                    }
                    Metric::Histogram(HistogramSnapshot {
                        count,
                        sum,
                        buckets,
                    })
                }
                tag => return Err(SnapshotDecodeError::BadTag(tag)),
            };
            entries.push((name, metric));
        }
        if pos != bytes.len() {
            return Err(SnapshotDecodeError::TrailingBytes);
        }
        Ok(MetricsSnapshot { entries })
    }

    /// A human-readable rendering, one metric per line. Quantiles that
    /// resolve to the absorbing last bucket (values ≥ 2^30, bound
    /// `u64::MAX`) print as `max` instead of a 20-digit literal.
    pub fn render(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for (name, metric) in &self.entries {
            match metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "counter    {name} = {v}");
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "histogram  {name}: count={} sum={} mean={:.1} p50≤{} p99≤{}",
                        h.count,
                        h.sum,
                        h.mean(),
                        render_bound(h.quantile_upper_bound(0.5)),
                        render_bound(h.quantile_upper_bound(0.99)),
                    );
                }
            }
        }
        out
    }

    /// A JSON rendering (counters and histograms keyed by name) for the
    /// CI artifact. Hand-rolled — the workspace has no JSON dependency.
    pub fn to_json(&self) -> String {
        use fmt::Write;
        let mut counters = String::new();
        let mut histograms = String::new();
        for (name, metric) in &self.entries {
            match metric {
                Metric::Counter(v) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    let _ = write!(counters, "{}:{v}", json_string(name));
                }
                Metric::Histogram(h) => {
                    if !histograms.is_empty() {
                        histograms.push(',');
                    }
                    let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
                    let _ = write!(
                        histograms,
                        "{}:{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                        json_string(name),
                        h.count,
                        h.sum,
                        buckets.join(",")
                    );
                }
            }
        }
        format!("{{\"counters\":{{{counters}}},\"histograms\":{{{histograms}}}}}")
    }
}

/// Formats a bucket bound for display: the absorbing bucket's
/// `u64::MAX` sentinel means "beyond the largest finite bucket".
fn render_bound(bound: u64) -> String {
    if bound == u64::MAX {
        "max".to_string()
    } else {
        bound.to_string()
    }
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, SnapshotDecodeError> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or(SnapshotDecodeError::Truncated)?;
    let mut le = [0u8; 8];
    le.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(le))
}

/// Escapes a metric name as a JSON string literal (names are ASCII in
/// practice; quotes/backslashes/control bytes are escaped anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut hist = HistogramSnapshot {
            count: 3,
            sum: 10,
            ..HistogramSnapshot::default()
        };
        hist.buckets[0] = 1;
        hist.buckets[3] = 2;
        MetricsSnapshot::from_entries(vec![
            ("z.last".into(), Metric::Counter(7)),
            ("a.first".into(), Metric::Counter(1)),
            ("m.hist".into(), Metric::Histogram(hist)),
        ])
    }

    #[test]
    fn entries_are_sorted() {
        let snap = sample();
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.first", "m.hist", "z.last"]);
    }

    #[test]
    fn canonical_bytes_round_trip() {
        let snap = sample();
        let bytes = snap.canonical_bytes();
        let back = MetricsSnapshot::from_canonical_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        // empty snapshot round-trips too
        let empty = MetricsSnapshot::default();
        assert_eq!(
            MetricsSnapshot::from_canonical_bytes(&empty.canonical_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn decode_rejects_malformed_input() {
        let snap = sample();
        let bytes = snap.canonical_bytes();
        assert_eq!(
            MetricsSnapshot::from_canonical_bytes(&bytes[..bytes.len() - 1]),
            Err(SnapshotDecodeError::Truncated)
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            MetricsSnapshot::from_canonical_bytes(&trailing),
            Err(SnapshotDecodeError::TrailingBytes)
        );
        let mut bad_tag = bytes.clone();
        // first entry's tag sits after count (8) + name len (8) + name
        let tag_at = 8 + 8 + "a.first".len();
        bad_tag[tag_at] = 9;
        assert_eq!(
            MetricsSnapshot::from_canonical_bytes(&bad_tag),
            Err(SnapshotDecodeError::BadTag(9))
        );
    }

    #[test]
    fn quantile_bounds_are_sane() {
        // 10 observations of value 5 (bucket 3: 4..=7)
        let mut h = HistogramSnapshot {
            count: 10,
            sum: 50,
            ..HistogramSnapshot::default()
        };
        h.buckets[3] = 10;
        assert_eq!(h.quantile_upper_bound(0.5), 7);
        assert_eq!(h.quantile_upper_bound(0.99), 7);
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn render_shows_max_for_absorbing_bucket_bounds() {
        // observations of 2^62 land in the absorbing bucket
        let mut h = HistogramSnapshot {
            count: 2,
            sum: 1u64 << 63, // 2^62 + 2^62
            ..HistogramSnapshot::default()
        };
        h.buckets[crate::HISTOGRAM_BUCKETS - 1] = 2;
        let snap = MetricsSnapshot::from_entries(vec![("huge.hist".into(), Metric::Histogram(h))]);
        let text = snap.render();
        assert!(text.contains("p50≤max"), "got: {text}");
        assert!(text.contains("p99≤max"), "got: {text}");
        assert!(
            !text.contains(&u64::MAX.to_string()),
            "no 20-digit literals in: {text}"
        );
        // finite buckets still render numerically
        let mut h2 = HistogramSnapshot {
            count: 1,
            sum: 5,
            ..HistogramSnapshot::default()
        };
        h2.buckets[3] = 1;
        let snap2 =
            MetricsSnapshot::from_entries(vec![("small.hist".into(), Metric::Histogram(h2))]);
        assert!(snap2.render().contains("p99≤7"));
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json();
        assert!(j.starts_with("{\"counters\":{"));
        assert!(j.contains("\"a.first\":1"));
        assert!(j.contains("\"m.hist\":{\"count\":3,\"sum\":10,\"buckets\":[1,0,0,2,"));
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
