//! HPE key, ciphertext, and capability objects with canonical encodings.
//!
//! Encoded sizes are part of the reproduction: §VII of the paper reports
//! `PK = 65[n₀(n₀−1)+3]` bytes, `ciphertext = 65(n₀+1)` bytes and
//! `capability = 65[n₀² + (l+3)n₀]` bytes at 512-bit `p` (65 bytes per
//! compressed group element). The encoders here use the same compressed
//! representations, so size accounting can
//! be checked against real byte strings.

use apks_curve::{CurveParams, Gt};
use apks_dpvs::{DpvsBasis, DpvsVector};
use apks_math::encode::{DecodeError, Reader, Writer};

/// The HPE public key: the published part `B̂` of the basis.
///
/// `rows` are `b_1, …, b_n`; `d_mid = b_{n+1} + b_{n+2}`; `b_last =
/// b_{n+3}`. (`b_{n+1}`, `b_{n+2}` themselves are *not* published — that
/// is what hides `ζ`.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HpePublicKey {
    /// Predicate dimension `n`.
    pub n: usize,
    /// `b_1 … b_n`.
    pub rows: Vec<DpvsVector>,
    /// `d_{n+1} = b_{n+1} + b_{n+2}`.
    pub d_mid: DpvsVector,
    /// `b_{n+3}`.
    pub b_last: DpvsVector,
}

impl HpePublicKey {
    /// Ambient DPVS dimension `n₀ = n + 3`.
    pub fn n0(&self) -> usize {
        self.n + 3
    }

    /// Canonical encoding.
    pub fn encode(&self, params: &CurveParams, w: &mut Writer) {
        w.u32(self.n as u32);
        for row in &self.rows {
            row.encode(params, w);
        }
        self.d_mid.encode(params, w);
        self.b_last.encode(params, w);
    }

    /// Decodes a public key.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or invalid points.
    pub fn decode(params: &CurveParams, r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.u32()? as usize;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push(DpvsVector::decode(params, r)?);
        }
        let d_mid = DpvsVector::decode(params, r)?;
        let b_last = DpvsVector::decode(params, r)?;
        Ok(HpePublicKey {
            n,
            rows,
            d_mid,
            b_last,
        })
    }

    /// Encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        4 + (self.n + 2) * DpvsVector::encoded_size(self.n0())
    }
}

/// The HPE master secret key — the paper's `msk := (X, B*)`.
///
/// `b_star` materializes the dual basis (for HPE⁺ the blinded `B̃* =
/// r·B*`); `y` is its exponent matrix (`Y = (Xᵀ)⁻¹`, scaled by `r` in
/// HPE⁺), which lets `GenKey` assemble key components in the exponent at
/// the paper's `O(n₀²)` cost.
#[derive(Clone, Debug)]
pub struct HpeMasterKey {
    /// All `n + 3` rows of `B*` (or `B̃*`).
    pub b_star: DpvsBasis,
    /// The exponent matrix of `b_star` relative to the group generator.
    pub y: apks_dpvs::FrMatrix,
}

impl HpeMasterKey {
    /// Encoded size in bytes (point representation, matching the paper's
    /// `MSK = 85·n₀²` accounting of basis elements + exponents).
    pub fn encoded_size(&self) -> usize {
        let n0 = self.b_star.dim();
        self.b_star.len() * DpvsVector::encoded_size(n0) + n0 * n0 * 32
    }

    /// Canonical encoding (basis points + exponent matrix).
    pub fn encode(&self, params: &CurveParams, w: &mut Writer) {
        self.b_star.encode(params, w);
        self.y.encode(w);
    }

    /// Decodes a master key.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or invalid group/field elements.
    pub fn decode(params: &CurveParams, r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let b_star = DpvsBasis::decode(params, r)?;
        let y = apks_dpvs::FrMatrix::decode(r)?;
        if y.rows() != b_star.len() || y.cols() != b_star.dim() {
            return Err(DecodeError::Invalid("master key shape mismatch"));
        }
        Ok(HpeMasterKey { b_star, y })
    }
}

/// A (possibly delegated) HPE secret key — an APKS search capability.
///
/// A level-`ℓ` key carries one decryption vector, `ℓ+1` re-randomization
/// vectors and (unless *finalized*) `n` delegation vectors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HpeSecretKey {
    /// Delegation level (1 = issued directly from the master key).
    pub level: usize,
    /// `k*_dec` — the component used by `Search`/`Dec`.
    pub dec: DpvsVector,
    /// `k*_{ran,j}` — re-randomization components used by `Delegate`.
    pub ran: Vec<DpvsVector>,
    /// `k*_{del,j}` — delegation components (empty once finalized).
    pub del: Vec<DpvsVector>,
}

/// A secret key preprocessed for repeated `Search`/`Dec` evaluation.
///
/// Holds the Miller line precomputation of `k*_dec` (the only component
/// `Search` pairs with). Produced once per scan by
/// [`crate::Hpe::prepare_key`] and reused across every document; the
/// `ran`/`del` components are deliberately absent — a prepared key can
/// only evaluate, not delegate.
#[derive(Clone, Debug)]
pub struct PreparedHpeKey {
    /// Delegation level of the source key.
    pub level: usize,
    /// `k*_dec` with per-coordinate Miller lines precomputed.
    pub dec: apks_dpvs::PreparedDpvsVector,
}

impl PreparedHpeKey {
    /// Ambient dimension `n₀` of the prepared decryption vector.
    pub fn dim(&self) -> usize {
        self.dec.dim()
    }
}

impl HpeSecretKey {
    /// True iff this key can still be delegated.
    pub fn can_delegate(&self) -> bool {
        !self.del.is_empty()
    }

    /// Returns a *finalized* copy: delegation and re-randomization
    /// components stripped, so the holder (e.g. the cloud server executing
    /// a search) cannot derive further-restricted or re-randomized keys.
    pub fn finalize(&self) -> HpeSecretKey {
        HpeSecretKey {
            level: self.level,
            dec: self.dec.clone(),
            ran: Vec::new(),
            del: Vec::new(),
        }
    }

    /// Canonical encoding.
    pub fn encode(&self, params: &CurveParams, w: &mut Writer) {
        w.u32(self.level as u32);
        self.dec.encode(params, w);
        w.u32(self.ran.len() as u32);
        for v in &self.ran {
            v.encode(params, w);
        }
        w.u32(self.del.len() as u32);
        for v in &self.del {
            v.encode(params, w);
        }
    }

    /// Decodes a secret key.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or invalid points.
    pub fn decode(params: &CurveParams, r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let level = r.u32()? as usize;
        let dec = DpvsVector::decode(params, r)?;
        let n_ran = r.u32()? as usize;
        let mut ran = Vec::with_capacity(n_ran);
        for _ in 0..n_ran {
            ran.push(DpvsVector::decode(params, r)?);
        }
        let n_del = r.u32()? as usize;
        let mut del = Vec::with_capacity(n_del);
        for _ in 0..n_del {
            del.push(DpvsVector::decode(params, r)?);
        }
        Ok(HpeSecretKey {
            level,
            dec,
            ran,
            del,
        })
    }

    /// Encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        let n0 = self.dec.dim();
        12 + (1 + self.ran.len() + self.del.len()) * DpvsVector::encoded_size(n0)
    }
}

/// An HPE ciphertext — an encrypted APKS index entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HpeCiphertext {
    /// `c₁ = δ₁ Σ xᵢ bᵢ + ζ d_{n+1} + δ₂ b_{n+3}`.
    pub c1: DpvsVector,
    /// `c₂ = g_T^ζ · m`.
    pub c2: Gt,
}

impl HpeCiphertext {
    /// Canonical encoding (compressed `G_T`).
    pub fn encode(&self, params: &CurveParams, w: &mut Writer) {
        self.c1.encode(params, w);
        w.bytes(&self.c2.to_bytes_compressed(params));
    }

    /// Decodes a ciphertext.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or invalid group elements.
    pub fn decode(params: &CurveParams, r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let c1 = DpvsVector::decode(params, r)?;
        let gt_len = 8 * apks_math::FP_LIMBS + 1;
        let c2 = Gt::from_bytes_compressed(params, r.bytes(gt_len)?)
            .ok_or(DecodeError::Invalid("Gt element"))?;
        Ok(HpeCiphertext { c1, c2 })
    }

    /// Encoded size in bytes for ambient dimension `n0`.
    pub fn encoded_size(n0: usize) -> usize {
        DpvsVector::encoded_size(n0) + 8 * apks_math::FP_LIMBS + 1
    }
}
