//! HPE⁺ — query privacy via proxy-blinded bases (Fig. 7 of the paper).
//!
//! The plain scheme is public-key: anyone can encrypt, so an
//! honest-but-curious server can mount a **dictionary attack** on a
//! capability by encrypting every candidate index and testing it. HPE⁺
//! breaks this: the TA draws a secret `r ∈ F_q \ {0}` and builds keys over
//! the blinded basis `B̃* = r·B*`. Owners still encrypt with the public
//! `B̂`, producing *partial* ciphertexts that match nothing; a proxy holding
//! `r⁻¹` transforms `c₁ ↦ r⁻¹·c₁` before storage, after which
//! `e(r⁻¹c₁, r·k*) = e(c₁, k*)` and search works as before. Without
//! cooperation from a proxy the server cannot fabricate searchable
//! ciphertexts, so the dictionary attack fails.
//!
//! Multi-proxy deployments split `r = r₁·r₂⋯r_P`; each proxy holds one
//! `rᵢ⁻¹` and the transforms compose in any order (see `apks-proxy`).

use crate::keys::{HpeCiphertext, HpeMasterKey, HpePublicKey};
use crate::scheme::Hpe;
use apks_math::Fr;
use rand::Rng;

/// The HPE⁺ master key: the blinded dual basis plus the blinding secret.
///
/// The TA retains `r` (needed to provision proxies); the blinded basis is
/// what key generation uses, exactly as `msk := (X, B̃*)` in Fig. 7.
#[derive(Clone, Debug)]
pub struct HpePlusMasterKey {
    /// Master key over the blinded basis `B̃* = r·B*`.
    pub msk: HpeMasterKey,
    /// The blinding secret `r`.
    pub blinding: Fr,
}

/// A proxy's share of the unblinding secret.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProxyTransformKey {
    /// `rᵢ⁻¹` — the factor this proxy applies to `c₁`.
    pub r_inv: Fr,
}

impl ProxyTransformKey {
    /// `HPE⁺-ProxyEnc`: transforms a partial ciphertext,
    /// `c₁ ↦ rᵢ⁻¹ · c₁` (`c₂` unchanged).
    pub fn transform(&self, hpe: &Hpe, ct: &HpeCiphertext) -> HpeCiphertext {
        HpeCiphertext {
            c1: ct.c1.scale(hpe.params(), self.r_inv),
            c2: ct.c2,
        }
    }
}

impl Hpe {
    /// `HPE⁺-Setup`: like [`Hpe::setup`] but returns a blinded master key.
    ///
    /// For a single-proxy deployment, hand the proxy
    /// `ProxyTransformKey { r_inv: blinding.inv() }`; for multi-proxy,
    /// split with [`split_blinding`].
    pub fn setup_plus<R: Rng + ?Sized>(&self, rng: &mut R) -> (HpePublicKey, HpePlusMasterKey) {
        let (pk, msk) = self.setup(rng);
        let blinding = Fr::random_nonzero(rng);
        let dpvs = apks_dpvs::Dpvs::new(self.params().clone(), self.n0());
        let blinded = dpvs.scale_basis(&msk.b_star, blinding);
        (
            pk,
            HpePlusMasterKey {
                msk: HpeMasterKey {
                    b_star: blinded,
                    y: msk.y.scale(blinding),
                },
                blinding,
            },
        )
    }

    /// `HPE⁺-PartialEnc` is identical to `HPE-Enc`; exposed under the
    /// paper's name for call-site clarity.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn partial_encrypt<R: Rng + ?Sized>(
        &self,
        pk: &HpePublicKey,
        x: &[Fr],
        rng: &mut R,
    ) -> Result<HpeCiphertext, crate::HpeError> {
        self.encrypt_marker(pk, x, rng)
    }
}

/// Splits the blinding secret for `count` proxies:
/// returns `(r₁⁻¹, …, r_P⁻¹)` with `r = Π rᵢ`.
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn split_blinding<R: Rng + ?Sized>(
    blinding: Fr,
    count: usize,
    rng: &mut R,
) -> Vec<ProxyTransformKey> {
    assert!(count > 0, "at least one proxy required");
    let mut shares = Vec::with_capacity(count);
    let mut acc = Fr::one();
    for _ in 0..count - 1 {
        let ri = Fr::random_nonzero(rng);
        acc *= ri;
        shares.push(ri);
    }
    // last share makes the product equal `blinding`
    shares.push(blinding * acc.inv().expect("product of non-zeros"));
    shares
        .into_iter()
        .map(|ri| ProxyTransformKey {
            r_inv: ri.inv().expect("non-zero share"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apks_curve::CurveParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn orthogonal_pair(rng: &mut StdRng) -> (Vec<Fr>, Vec<Fr>) {
        let t = Fr::random(rng);
        let x = vec![Fr::one(), t];
        let b = Fr::random_nonzero(rng);
        (x, vec![-(b * t), b])
    }

    #[test]
    fn transformed_ciphertext_matches() {
        let hpe = Hpe::new(CurveParams::fast(), 2);
        let mut rng = StdRng::seed_from_u64(300);
        let (pk, mk) = hpe.setup_plus(&mut rng);
        let (x, v) = orthogonal_pair(&mut rng);
        let key = hpe.gen_key(&pk, &mk.msk, &v, &mut rng).unwrap();
        let partial = hpe.partial_encrypt(&pk, &x, &mut rng).unwrap();
        let proxy = ProxyTransformKey {
            r_inv: mk.blinding.inv().unwrap(),
        };
        let full = proxy.transform(&hpe, &partial);
        assert!(hpe.test(&pk, &key, &full).unwrap());
    }

    #[test]
    fn untransformed_ciphertext_does_not_match() {
        // The essence of the dictionary-attack defence: a ciphertext built
        // from the public key alone does not verify against blinded keys.
        let hpe = Hpe::new(CurveParams::fast(), 2);
        let mut rng = StdRng::seed_from_u64(301);
        let (pk, mk) = hpe.setup_plus(&mut rng);
        let (x, v) = orthogonal_pair(&mut rng);
        let key = hpe.gen_key(&pk, &mk.msk, &v, &mut rng).unwrap();
        let partial = hpe.partial_encrypt(&pk, &x, &mut rng).unwrap();
        assert!(!hpe.test(&pk, &key, &partial).unwrap());
    }

    #[test]
    fn non_matching_index_still_rejected_after_transform() {
        let hpe = Hpe::new(CurveParams::fast(), 2);
        let mut rng = StdRng::seed_from_u64(302);
        let (pk, mk) = hpe.setup_plus(&mut rng);
        let (x, mut v) = orthogonal_pair(&mut rng);
        v[0] += Fr::one();
        let key = hpe.gen_key(&pk, &mk.msk, &v, &mut rng).unwrap();
        let proxy = ProxyTransformKey {
            r_inv: mk.blinding.inv().unwrap(),
        };
        let full = proxy.transform(&hpe, &hpe.partial_encrypt(&pk, &x, &mut rng).unwrap());
        assert!(!hpe.test(&pk, &key, &full).unwrap());
    }

    #[test]
    fn multi_proxy_chain_composes() {
        let hpe = Hpe::new(CurveParams::fast(), 2);
        let mut rng = StdRng::seed_from_u64(303);
        let (pk, mk) = hpe.setup_plus(&mut rng);
        let (x, v) = orthogonal_pair(&mut rng);
        let key = hpe.gen_key(&pk, &mk.msk, &v, &mut rng).unwrap();
        for count in [1usize, 2, 4] {
            let proxies = split_blinding(mk.blinding, count, &mut rng);
            let mut ct = hpe.partial_encrypt(&pk, &x, &mut rng).unwrap();
            // any order works; apply in reverse for spice
            for p in proxies.iter().rev() {
                ct = p.transform(&hpe, &ct);
            }
            assert!(hpe.test(&pk, &key, &ct).unwrap(), "count={count}");
        }
    }

    #[test]
    fn partial_chain_insufficient() {
        let hpe = Hpe::new(CurveParams::fast(), 2);
        let mut rng = StdRng::seed_from_u64(304);
        let (pk, mk) = hpe.setup_plus(&mut rng);
        let (x, v) = orthogonal_pair(&mut rng);
        let key = hpe.gen_key(&pk, &mk.msk, &v, &mut rng).unwrap();
        let proxies = split_blinding(mk.blinding, 3, &mut rng);
        let mut ct = hpe.partial_encrypt(&pk, &x, &mut rng).unwrap();
        for p in &proxies[..2] {
            ct = p.transform(&hpe, &ct);
        }
        assert!(!hpe.test(&pk, &key, &ct).unwrap());
    }

    #[test]
    fn delegation_works_under_plus() {
        let hpe = Hpe::new(CurveParams::fast(), 3);
        let mut rng = StdRng::seed_from_u64(305);
        let (pk, mk) = hpe.setup_plus(&mut rng);
        let t = Fr::random(&mut rng);
        let x = vec![Fr::one(), t, t * t];
        let mk_orth = |rng: &mut StdRng| {
            let b = Fr::random(rng);
            let c = Fr::random(rng);
            vec![-(b * t + c * t * t), b, c]
        };
        let v1 = mk_orth(&mut rng);
        let v2 = mk_orth(&mut rng);
        let k1 = hpe.gen_key(&pk, &mk.msk, &v1, &mut rng).unwrap();
        let k2 = hpe.delegate(&pk, &k1, &v2, &mut rng).unwrap();
        let proxy = ProxyTransformKey {
            r_inv: mk.blinding.inv().unwrap(),
        };
        let ct = proxy.transform(&hpe, &hpe.partial_encrypt(&pk, &x, &mut rng).unwrap());
        assert!(hpe.test(&pk, &k2, &ct).unwrap());
    }
}
