//! Hierarchical Predicate Encryption for inner products.
//!
//! This crate implements the Okamoto–Takashima HPE scheme (ASIACRYPT 2009)
//! in its **general delegation** form — the variant the APKS paper builds
//! on (its Appendix A reproduces the same algorithms). The predicate family
//! is inner products: a ciphertext for attribute vector `x⃗` can be
//! decrypted by a key for predicate vector `v⃗` iff `x⃗ · v⃗ = 0`; a
//! delegated key for `(v⃗₁, …, v⃗_ℓ)` requires *all* inner products to
//! vanish, which is what makes delegated search capabilities strictly more
//! restrictive.
//!
//! Layout of the `n+3`-dimensional DPVS (for `n`-dimensional predicates):
//! coordinates `0..n` carry the attribute/predicate vectors, coordinates
//! `n, n+1` (published only as their sum `d_{n+1} = b_{n+1} + b_{n+2}`)
//! carry the message-binding randomness `ζ`, and coordinate `n+2` carries
//! ciphertext randomization `δ₂`.
//!
//! The [`plus`] module implements **HPE⁺** (Fig. 7 of the APKS paper): the
//! master key bases are blinded by a secret `r` so that only ciphertexts
//! transformed by a proxy holding `r⁻¹` are searchable — defeating the
//! dictionary attack on query privacy.
//!
//! # Example
//!
//! ```
//! use apks_curve::CurveParams;
//! use apks_hpe::{Hpe, HpeError};
//! use apks_math::Fr;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), HpeError> {
//! let hpe = Hpe::new(CurveParams::fast(), 2);
//! let mut rng = StdRng::seed_from_u64(1);
//! let (pk, msk) = hpe.setup(&mut rng);
//!
//! // x · v = 3·5 + 5·(−3) = 0
//! let x = vec![Fr::from_u64(3), Fr::from_u64(5)];
//! let v = vec![Fr::from_u64(5), Fr::from_i64(-3)];
//! let key = hpe.gen_key(&pk, &msk, &v, &mut rng)?;
//! let ct = hpe.encrypt_marker(&pk, &x, &mut rng)?;
//! assert!(hpe.test(&pk, &key, &ct)?);
//! # Ok(())
//! # }
//! ```

pub mod keys;
pub mod plus;
pub mod scheme;

pub use keys::{HpeCiphertext, HpeMasterKey, HpePublicKey, HpeSecretKey, PreparedHpeKey};
pub use plus::{HpePlusMasterKey, ProxyTransformKey};
pub use scheme::{Hpe, HpeError};
