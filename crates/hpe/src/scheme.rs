//! The five HPE algorithms: `Setup`, `GenKey`, `Enc`, `Dec`, `Delegate`.
//!
//! Key component structure (level 1, reconstructed from OT09 — the APKS
//! paper's appendix truncates `GenKey`), writing `S(v⃗) = Σ vᵢ b*ᵢ` and
//! `W = b*_{n+1} − b*_{n+2}`:
//!
//! ```text
//! k*_dec    = σ_dec·S(v⃗) + η_dec·W + b*_{n+2}
//! k*_ran,j  = σ_j·S(v⃗)   + η_j·W                   (j = 1, 2)
//! k*_del,j  = σ'_j·S(v⃗)  + ψ·b*_j + η'_j·W         (j = 1, …, n)
//! ```
//!
//! The `(n+1, n+2)` coefficients of `k*_dec` sum to 1 and those of every
//! other component sum to 0, so pairing with `ζ·d_{n+1}` contributes
//! exactly `g_T^ζ` to decryption. Delegation (`Delegate`, verbatim from
//! the paper's appendix) preserves both invariants.

use crate::keys::{HpeCiphertext, HpeMasterKey, HpePublicKey, HpeSecretKey, PreparedHpeKey};
use apks_curve::{CurveParams, Gt};
use apks_dpvs::{Dpvs, DpvsVector, PreparedDpvsVector};
use apks_math::Fr;
use core::fmt;
use rand::Rng;
use std::sync::Arc;

/// Errors from HPE operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HpeError {
    /// A vector had the wrong dimension for this instance.
    DimensionMismatch {
        /// The dimension required by the instance.
        expected: usize,
        /// The dimension supplied by the caller.
        got: usize,
    },
    /// Delegation was requested on a finalized key.
    KeyNotDelegatable,
    /// A predicate vector was identically zero.
    ZeroPredicate,
}

impl fmt::Display for HpeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpeError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "vector dimension mismatch: expected {expected}, got {got}"
                )
            }
            HpeError::KeyNotDelegatable => {
                write!(f, "key was finalized and cannot be delegated")
            }
            HpeError::ZeroPredicate => write!(f, "predicate vector must be non-zero"),
        }
    }
}

impl std::error::Error for HpeError {}

/// An HPE instance for `n`-dimensional predicate vectors.
#[derive(Clone, Debug)]
pub struct Hpe {
    params: Arc<CurveParams>,
    dpvs: Dpvs,
    n: usize,
}

impl Hpe {
    /// Creates an instance for predicate dimension `n` (ambient `n + 3`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(params: Arc<CurveParams>, n: usize) -> Self {
        assert!(n > 0, "predicate dimension must be positive");
        let dpvs = Dpvs::new(params.clone(), n + 3);
        Hpe { params, dpvs, n }
    }

    /// Predicate dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Ambient dimension `n₀ = n + 3`.
    pub fn n0(&self) -> usize {
        self.n + 3
    }

    /// The curve parameters.
    pub fn params(&self) -> &Arc<CurveParams> {
        &self.params
    }

    /// `HPE-Setup`: samples dual bases and publishes `B̂`.
    ///
    /// Cost: `O(n₀²)` exponentiations per basis — Fig. 8(a).
    pub fn setup<R: Rng + ?Sized>(&self, rng: &mut R) -> (HpePublicKey, HpeMasterKey) {
        let (b, b_star, _x, y) = self.dpvs.generate_dual_bases(rng);
        let pk = self.publish(&b);
        (pk, HpeMasterKey { b_star, y })
    }

    /// Builds the published part `B̂` from a full basis `B`.
    pub(crate) fn publish(&self, b: &apks_dpvs::DpvsBasis) -> HpePublicKey {
        let n = self.n;
        let rows = (0..n).map(|i| b.row(i).clone()).collect();
        let d_mid = b.row(n).add(&self.params, b.row(n + 1));
        let b_last = b.row(n + 2).clone();
        HpePublicKey {
            n,
            rows,
            d_mid,
            b_last,
        }
    }

    fn check_dim(&self, v: &[Fr]) -> Result<(), HpeError> {
        if v.len() != self.n {
            return Err(HpeError::DimensionMismatch {
                expected: self.n,
                got: v.len(),
            });
        }
        Ok(())
    }

    /// Combines `B*` rows with a full-width coefficient vector, done in
    /// the exponent (the msk holder knows `Y`): one `F_q` matvec plus
    /// `n₀` fixed-base exponentiations.
    fn combine_star(&self, msk: &HpeMasterKey, coeffs: &[Fr]) -> DpvsVector {
        self.dpvs.combine_in_exponent(&msk.y, coeffs)
    }

    /// Coefficient vector `σ·v⃗` on `0..n`, `(η, −η)` on `(n, n+1)`, plus
    /// optional extras.
    fn star_coeffs(&self, sigma: Fr, v: &[Fr], eta: Fr) -> Vec<Fr> {
        let mut c = vec![Fr::ZERO; self.n0()];
        for (ci, &vi) in c.iter_mut().zip(v) {
            *ci = sigma * vi;
        }
        c[self.n] = eta;
        c[self.n + 1] = -eta;
        c
    }

    /// `HPE-GenKey`: issues a level-1 key for predicate vector `v⃗`.
    ///
    /// Components are assembled *in the exponent* (the msk holder knows
    /// `Y`), costing one fixed-base exponentiation per coordinate —
    /// `O(n₀²)` for the whole key.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch or a zero predicate vector.
    pub fn gen_key<R: Rng + ?Sized>(
        &self,
        pk: &HpePublicKey,
        msk: &HpeMasterKey,
        v: &[Fr],
        rng: &mut R,
    ) -> Result<HpeSecretKey, HpeError> {
        self.gen_key_with(pk, msk, v, rng, |c| self.combine_star(msk, c))
    }

    /// `HPE-GenKey` computed by point arithmetic over the `B*` rows — the
    /// implementation a holder of bare basis *points* would use, and the
    /// cost profile the paper's Fig. 8(c) exhibits (zero coefficients of
    /// "don't care" dimensions skip whole rows, so sparse queries are
    /// cheaper to authorize). Kept for the ablation benchmark and the
    /// report's Fig. 8(c) reproduction.
    ///
    /// # Errors
    ///
    /// As [`Hpe::gen_key`].
    pub fn gen_key_via_points<R: Rng + ?Sized>(
        &self,
        pk: &HpePublicKey,
        msk: &HpeMasterKey,
        v: &[Fr],
        rng: &mut R,
    ) -> Result<HpeSecretKey, HpeError> {
        self.gen_key_with(pk, msk, v, rng, |c| msk.b_star.combine(&self.params, c))
    }

    fn gen_key_with<R: Rng + ?Sized>(
        &self,
        _pk: &HpePublicKey,
        _msk: &HpeMasterKey,
        v: &[Fr],
        rng: &mut R,
        combine: impl Fn(&[Fr]) -> DpvsVector,
    ) -> Result<HpeSecretKey, HpeError> {
        self.check_dim(v)?;
        if v.iter().all(|c| c.is_zero()) {
            return Err(HpeError::ZeroPredicate);
        }
        let n = self.n;

        // k*_dec
        let mut c = self.star_coeffs(Fr::random(rng), v, Fr::random(rng));
        c[n + 1] += Fr::one(); // + b*_{n+2}
        let dec = combine(&c);

        // k*_ran,1 , k*_ran,2
        let ran = (0..2)
            .map(|_| {
                let c = self.star_coeffs(Fr::random(rng), v, Fr::random(rng));
                combine(&c)
            })
            .collect();

        // k*_del,j with shared ψ
        let psi = Fr::random_nonzero(rng);
        let del = (0..n)
            .map(|j| {
                let mut c = self.star_coeffs(Fr::random(rng), v, Fr::random(rng));
                c[j] += psi;
                combine(&c)
            })
            .collect();

        Ok(HpeSecretKey {
            level: 1,
            dec,
            ran,
            del,
        })
    }

    /// Re-randomizes a key in place of its predicate: adds a fresh random
    /// combination of the `ran` components to every part, producing a key
    /// for the *same* predicate chain that is unlinkable to the original.
    /// (This is what the `k*_ran` components exist for; an LTA can hand
    /// out re-randomized copies of one delegated capability so the server
    /// cannot correlate users who share a query.)
    ///
    /// # Errors
    ///
    /// Fails if the key was finalized (no `ran` components).
    pub fn rerandomize<R: Rng + ?Sized>(
        &self,
        key: &HpeSecretKey,
        rng: &mut R,
    ) -> Result<HpeSecretKey, HpeError> {
        if key.ran.is_empty() {
            return Err(HpeError::KeyNotDelegatable);
        }
        let ran_refs: Vec<&DpvsVector> = key.ran.iter().collect();
        let fresh = |rng: &mut R| -> DpvsVector {
            let alphas: Vec<Fr> = (0..ran_refs.len()).map(|_| Fr::random(rng)).collect();
            DpvsVector::linear_combination(&self.params, &ran_refs, &alphas)
        };
        let dec = key.dec.add(&self.params, &fresh(rng));
        let ran = key
            .ran
            .iter()
            .map(|k| k.add(&self.params, &fresh(rng)))
            .collect();
        let del = key
            .del
            .iter()
            .map(|k| k.add(&self.params, &fresh(rng)))
            .collect();
        Ok(HpeSecretKey {
            level: key.level,
            dec,
            ran,
            del,
        })
    }

    /// `HPE-Enc`: encrypts message `m ∈ G_T` under attribute vector `x⃗`.
    ///
    /// Cost: `O(n₀²)` exponentiations — Fig. 8(b).
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        pk: &HpePublicKey,
        x: &[Fr],
        m: &Gt,
        rng: &mut R,
    ) -> Result<HpeCiphertext, HpeError> {
        self.check_dim(x)?;
        let delta1 = Fr::random(rng);
        let delta2 = Fr::random(rng);
        let zeta = Fr::random(rng);

        let mut rows: Vec<&DpvsVector> = pk.rows.iter().collect();
        rows.push(&pk.d_mid);
        rows.push(&pk.b_last);
        let mut coeffs: Vec<Fr> = x.iter().map(|&xi| delta1 * xi).collect();
        coeffs.push(zeta);
        coeffs.push(delta2);
        let c1 = DpvsVector::linear_combination(&self.params, &rows, &coeffs);

        let gt = Gt(self.params.gt_generator());
        let c2 = gt.pow(&self.params, zeta).mul(&self.params, m);
        Ok(HpeCiphertext { c1, c2 })
    }

    /// Encrypts the *marker* plaintext (the `G_T` identity) — APKS
    /// `GenIndex` uses this so `Search` is a plain comparison.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn encrypt_marker<R: Rng + ?Sized>(
        &self,
        pk: &HpePublicKey,
        x: &[Fr],
        rng: &mut R,
    ) -> Result<HpeCiphertext, HpeError> {
        self.encrypt(pk, x, &Gt::identity(&self.params), rng)
    }

    /// `HPE-Dec`: returns `c₂ / e(c₁, k*_dec)`.
    ///
    /// When every predicate vector embedded in `key` is orthogonal to the
    /// ciphertext's attribute vector, this equals the encrypted message;
    /// otherwise it is a uniformly random-looking `G_T` element.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn decrypt(
        &self,
        _pk: &HpePublicKey,
        key: &HpeSecretKey,
        ct: &HpeCiphertext,
    ) -> Result<Gt, HpeError> {
        if ct.c1.dim() != self.n0() {
            return Err(HpeError::DimensionMismatch {
                expected: self.n0(),
                got: ct.c1.dim(),
            });
        }
        apks_telemetry::source::record_predicate_evals(1);
        let e = ct.c1.pair(&self.params, &key.dec);
        Ok(ct.c2.mul(&self.params, &e.inverse(&self.params)))
    }

    /// `Search`-style predicate test: true iff decryption yields the marker.
    ///
    /// Cost: `n₀ = n + 3` pairings (one multi-pairing) — Fig. 8(d).
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn test(
        &self,
        pk: &HpePublicKey,
        key: &HpeSecretKey,
        ct: &HpeCiphertext,
    ) -> Result<bool, HpeError> {
        Ok(self.decrypt(pk, key, ct)?.is_identity(&self.params))
    }

    /// Precomputes the Miller lines of `k*_dec` for repeated evaluation.
    ///
    /// One-time cost of roughly one Miller loop per coordinate (`n₀`
    /// total); every subsequent [`Hpe::test_prepared`] on the result
    /// then runs in the paper's "with preprocessing" mode (§VII-B.4) —
    /// the corpus-scan amortization.
    pub fn prepare_key(&self, key: &HpeSecretKey) -> PreparedHpeKey {
        PreparedHpeKey {
            level: key.level,
            dec: PreparedDpvsVector::prepare(&self.params, &key.dec),
        }
    }

    /// [`Hpe::decrypt`] with a prepared key: `c₂ / e(c₁, k*_dec)`, the
    /// pairing evaluated from the precomputed lines (the pairing is
    /// symmetric, so fixing the key side is sound).
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn decrypt_prepared(
        &self,
        _pk: &HpePublicKey,
        key: &PreparedHpeKey,
        ct: &HpeCiphertext,
    ) -> Result<Gt, HpeError> {
        if ct.c1.dim() != self.n0() || key.dim() != self.n0() {
            return Err(HpeError::DimensionMismatch {
                expected: self.n0(),
                got: if ct.c1.dim() != self.n0() {
                    ct.c1.dim()
                } else {
                    key.dim()
                },
            });
        }
        apks_telemetry::source::record_predicate_evals(1);
        let e = key.dec.pair(&self.params, &ct.c1);
        Ok(ct.c2.mul(&self.params, &e.inverse(&self.params)))
    }

    /// [`Hpe::test`] with a prepared key — identical verdicts, amortized
    /// Miller loops.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn test_prepared(
        &self,
        pk: &HpePublicKey,
        key: &PreparedHpeKey,
        ct: &HpeCiphertext,
    ) -> Result<bool, HpeError> {
        Ok(self
            .decrypt_prepared(pk, key, ct)?
            .is_identity(&self.params))
    }

    /// [`Hpe::test_prepared`] for a whole wave of prepared keys against
    /// one ciphertext: the Miller loops run in lockstep
    /// ([`PreparedDpvsVector::pair_many`]), so `c₁`'s coordinates are
    /// loaded once for the batch, with one final exponentiation per key.
    ///
    /// Verdict `j` is identical to `test_prepared(pk, keys[j], ct)`.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch of the ciphertext or any key.
    pub fn test_prepared_wave(
        &self,
        _pk: &HpePublicKey,
        keys: &[&PreparedHpeKey],
        ct: &HpeCiphertext,
    ) -> Result<Vec<bool>, HpeError> {
        if ct.c1.dim() != self.n0() {
            return Err(HpeError::DimensionMismatch {
                expected: self.n0(),
                got: ct.c1.dim(),
            });
        }
        for key in keys {
            if key.dim() != self.n0() {
                return Err(HpeError::DimensionMismatch {
                    expected: self.n0(),
                    got: key.dim(),
                });
            }
        }
        apks_telemetry::source::record_predicate_evals(keys.len() as u64);
        let decs: Vec<&PreparedDpvsVector> = keys.iter().map(|k| &k.dec).collect();
        let pairings = PreparedDpvsVector::pair_many(&self.params, &decs, &ct.c1);
        Ok(pairings
            .into_iter()
            .map(|e| {
                ct.c2
                    .mul(&self.params, &e.inverse(&self.params))
                    .is_identity(&self.params)
            })
            .collect())
    }

    /// `HPE-Delegate`: derives a level-`ℓ+1` key that additionally
    /// requires `x⃗ · v⃗_{ℓ+1} = 0` (the paper's appendix, verbatim).
    ///
    /// # Errors
    ///
    /// Fails if the key was finalized, on dimension mismatch, or if
    /// `v_next` is zero.
    pub fn delegate<R: Rng + ?Sized>(
        &self,
        _pk: &HpePublicKey,
        key: &HpeSecretKey,
        v_next: &[Fr],
        rng: &mut R,
    ) -> Result<HpeSecretKey, HpeError> {
        self.check_dim(v_next)?;
        if !key.can_delegate() {
            return Err(HpeError::KeyNotDelegatable);
        }
        if v_next.iter().all(|c| c.is_zero()) {
            return Err(HpeError::ZeroPredicate);
        }
        let n = self.n;
        let level = key.level + 1;

        // Σ_j v_{ℓ+1,j} k*_del,j — computed once, re-scaled per component.
        let del_refs: Vec<&DpvsVector> = key.del.iter().collect();
        let sv_del = DpvsVector::linear_combination(&self.params, &del_refs, v_next);

        let ran_refs: Vec<&DpvsVector> = key.ran.iter().collect();
        // Fresh `Σ αᵢ k*_{ℓ,ran,i} + σ (Σ v k*_del)` with new randomness
        // per invocation.
        let rand_combo = |rng: &mut R| -> DpvsVector {
            let alphas: Vec<Fr> = (0..ran_refs.len()).map(|_| Fr::random(rng)).collect();
            let sigma = Fr::random(rng);
            DpvsVector::linear_combination(&self.params, &ran_refs, &alphas)
                .add(&self.params, &sv_del.scale(&self.params, sigma))
        };

        // k*_{ℓ+1,dec} = k*_{ℓ,dec} + Σ α_i k*_{ℓ,ran,i} + σ_dec Σ v k*_del
        let dec = key.dec.add(&self.params, &rand_combo(rng));

        // k*_{ℓ+1,ran,j}, j = 1..ℓ+2
        let ran = (0..level + 1).map(|_| rand_combo(rng)).collect();

        // k*_{ℓ+1,del,j} = Σ α k*_ran + σ_del,j Σ v k*_del + ψ' k*_{ℓ,del,j}
        let psi = Fr::random_nonzero(rng);
        let del = (0..n)
            .map(|j| rand_combo(rng).add(&self.params, &key.del[j].scale(&self.params, psi)))
            .collect();

        Ok(HpeSecretKey {
            level,
            dec,
            ran,
            del,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (Hpe, HpePublicKey, HpeMasterKey, StdRng) {
        let hpe = Hpe::new(CurveParams::fast(), n);
        let mut rng = StdRng::seed_from_u64(seed);
        let (pk, msk) = hpe.setup(&mut rng);
        (hpe, pk, msk, rng)
    }

    /// x orthogonal to v: x = (1, t, t²), v built so x·v = 0.
    fn orthogonal_pair(rng: &mut StdRng) -> (Vec<Fr>, Vec<Fr>) {
        let t = Fr::random(rng);
        let x = vec![Fr::one(), t, t * t];
        // v = (a, b, c) with a + b t + c t² = 0: pick b, c random, solve a.
        let b = Fr::random(rng);
        let c = Fr::random(rng);
        let a = -(b * t + c * t * t);
        (x, vec![a, b, c])
    }

    #[test]
    fn decrypt_recovers_message_when_orthogonal() {
        let (hpe, pk, msk, mut rng) = setup(3, 200);
        let (x, v) = orthogonal_pair(&mut rng);
        let key = hpe.gen_key(&pk, &msk, &v, &mut rng).unwrap();
        let m = Gt(hpe.params().gt_generator()).pow(hpe.params(), Fr::random(&mut rng));
        let ct = hpe.encrypt(&pk, &x, &m, &mut rng).unwrap();
        assert_eq!(hpe.decrypt(&pk, &key, &ct).unwrap(), m);
    }

    #[test]
    fn point_path_keys_equivalent_to_exponent_path() {
        let (hpe, pk, msk, mut rng) = setup(3, 210);
        let (x, v) = orthogonal_pair(&mut rng);
        let key = hpe.gen_key_via_points(&pk, &msk, &v, &mut rng).unwrap();
        let ct = hpe.encrypt_marker(&pk, &x, &mut rng).unwrap();
        assert!(hpe.test(&pk, &key, &ct).unwrap());
        // and delegation still works from a point-path key
        let v2 = {
            let t = Fr::random(&mut rng);
            let _ = t;
            v.clone()
        };
        let k2 = hpe.delegate(&pk, &key, &v2, &mut rng).unwrap();
        assert!(hpe.test(&pk, &k2, &ct).unwrap());
    }

    #[test]
    fn prepared_key_matches_plain_test_and_decrypt() {
        let (hpe, pk, msk, mut rng) = setup(3, 212);
        let (x, v) = orthogonal_pair(&mut rng);
        let key = hpe.gen_key(&pk, &msk, &v, &mut rng).unwrap();
        let prep = hpe.prepare_key(&key);
        assert_eq!(prep.dim(), hpe.n0());
        assert_eq!(prep.level, key.level);

        // matching ciphertext: same verdict and same decrypted value
        let m = Gt(hpe.params().gt_generator()).pow(hpe.params(), Fr::random(&mut rng));
        let ct = hpe.encrypt(&pk, &x, &m, &mut rng).unwrap();
        assert_eq!(
            hpe.decrypt_prepared(&pk, &prep, &ct).unwrap(),
            hpe.decrypt(&pk, &key, &ct).unwrap()
        );
        assert!(hpe.test_prepared(&pk, &hpe.prepare_key(&key), &ct).is_ok());

        // non-matching ciphertext: both reject
        let x_bad = vec![
            Fr::random(&mut rng),
            Fr::random(&mut rng),
            Fr::random(&mut rng),
        ];
        let ct_bad = hpe.encrypt_marker(&pk, &x_bad, &mut rng).unwrap();
        assert_eq!(
            hpe.test_prepared(&pk, &prep, &ct_bad).unwrap(),
            hpe.test(&pk, &key, &ct_bad).unwrap()
        );
        let ct_hit = hpe.encrypt_marker(&pk, &x, &mut rng).unwrap();
        assert!(hpe.test_prepared(&pk, &prep, &ct_hit).unwrap());

        // dimension mismatch surfaces as an error, not a panic
        let other = Hpe::new(CurveParams::fast(), 5);
        let mut rng2 = StdRng::seed_from_u64(213);
        let (pk5, msk5) = other.setup(&mut rng2);
        let v5 = vec![Fr::one(), Fr::one(), Fr::one(), Fr::one(), Fr::one()];
        let key5 = other.gen_key(&pk5, &msk5, &v5, &mut rng2).unwrap();
        let prep5 = other.prepare_key(&key5);
        assert!(matches!(
            hpe.test_prepared(&pk, &prep5, &ct_hit),
            Err(HpeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn wave_test_matches_per_key_test() {
        let (hpe, pk, msk, mut rng) = setup(3, 214);
        let (x, v) = orthogonal_pair(&mut rng);
        let hit_key = hpe.gen_key(&pk, &msk, &v, &mut rng).unwrap();
        let (_, v_miss) = orthogonal_pair(&mut rng);
        let miss_key = hpe.gen_key(&pk, &msk, &v_miss, &mut rng).unwrap();
        let ct = hpe.encrypt_marker(&pk, &x, &mut rng).unwrap();
        let preps = [
            hpe.prepare_key(&hit_key),
            hpe.prepare_key(&miss_key),
            hpe.prepare_key(&hit_key),
        ];
        let refs: Vec<&PreparedHpeKey> = preps.iter().collect();
        let wave = hpe.test_prepared_wave(&pk, &refs, &ct).unwrap();
        let singles: Vec<bool> = preps
            .iter()
            .map(|p| hpe.test_prepared(&pk, p, &ct).unwrap())
            .collect();
        assert_eq!(wave, singles);
        assert_eq!(wave, vec![true, false, true]);
        assert!(hpe.test_prepared_wave(&pk, &[], &ct).unwrap().is_empty());

        // a mismatched key anywhere in the wave errors out
        let other = Hpe::new(CurveParams::fast(), 5);
        let mut rng2 = StdRng::seed_from_u64(215);
        let (pk5, msk5) = other.setup(&mut rng2);
        let v5 = vec![Fr::one(); 5];
        let prep5 = other.prepare_key(&other.gen_key(&pk5, &msk5, &v5, &mut rng2).unwrap());
        assert!(matches!(
            hpe.test_prepared_wave(&pk, &[&preps[0], &prep5], &ct),
            Err(HpeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn test_rejects_non_orthogonal() {
        let (hpe, pk, msk, mut rng) = setup(3, 201);
        let (x, mut v) = orthogonal_pair(&mut rng);
        v[0] += Fr::one(); // break orthogonality
        let key = hpe.gen_key(&pk, &msk, &v, &mut rng).unwrap();
        let ct = hpe.encrypt_marker(&pk, &x, &mut rng).unwrap();
        assert!(!hpe.test(&pk, &key, &ct).unwrap());
    }

    #[test]
    fn test_accepts_orthogonal_marker() {
        let (hpe, pk, msk, mut rng) = setup(3, 202);
        let (x, v) = orthogonal_pair(&mut rng);
        let key = hpe.gen_key(&pk, &msk, &v, &mut rng).unwrap();
        let ct = hpe.encrypt_marker(&pk, &x, &mut rng).unwrap();
        assert!(hpe.test(&pk, &key, &ct).unwrap());
    }

    #[test]
    fn delegated_key_requires_both_predicates() {
        let (hpe, pk, msk, mut rng) = setup(4, 203);
        // x known; v1 ⊥ x; v2 ⊥ x: use x = (1, t, t², t³) and two
        // independent orthogonal vectors.
        let t = Fr::random(&mut rng);
        let x = vec![Fr::one(), t, t * t, t * t * t];
        let mk_orth = |rng: &mut StdRng| {
            let b = Fr::random(rng);
            let c = Fr::random(rng);
            let d = Fr::random(rng);
            let a = -(b * t + c * t * t + d * t * t * t);
            vec![a, b, c, d]
        };
        let v1 = mk_orth(&mut rng);
        let v2 = mk_orth(&mut rng);
        let k1 = hpe.gen_key(&pk, &msk, &v1, &mut rng).unwrap();
        let k2 = hpe.delegate(&pk, &k1, &v2, &mut rng).unwrap();
        assert_eq!(k2.level, 2);
        assert_eq!(k2.ran.len(), 3);

        // matches x (both orthogonal)
        let ct = hpe.encrypt_marker(&pk, &x, &mut rng).unwrap();
        assert!(hpe.test(&pk, &k2, &ct).unwrap());

        // x' orthogonal to v1 but NOT to v2 must be rejected by k2 but
        // accepted by k1. Find x' with x'·v1 = 0, x'·v2 ≠ 0:
        // solve 2 unknowns: x' = x + w where w·v1 = 0 pushes x'·v1 = 0.
        // Simpler: x' = (1, s, s², s³) for fresh s satisfies neither —
        // instead construct directly in the dual: pick x' random with
        // x'·v1 = 0 via solving last coordinate.
        let mut xp = vec![
            Fr::random(&mut rng),
            Fr::random(&mut rng),
            Fr::random(&mut rng),
        ];
        let last = -(xp[0] * v1[0] + xp[1] * v1[1] + xp[2] * v1[2])
            * v1[3].inv().expect("nonzero with overwhelming probability");
        xp.push(last);
        let dot2: Fr = xp.iter().zip(&v2).map(|(&a, &b)| a * b).sum();
        assert!(!dot2.is_zero(), "degenerate test vector");
        let ct2 = hpe.encrypt_marker(&pk, &xp, &mut rng).unwrap();
        assert!(hpe.test(&pk, &k1, &ct2).unwrap());
        assert!(!hpe.test(&pk, &k2, &ct2).unwrap());
    }

    #[test]
    fn two_level_delegation_chain() {
        let (hpe, pk, msk, mut rng) = setup(5, 204);
        let t = Fr::random(&mut rng);
        let x: Vec<Fr> = (0..5)
            .scan(Fr::one(), |acc, _| {
                let cur = *acc;
                *acc *= t;
                Some(cur)
            })
            .collect();
        let mk_orth = |rng: &mut StdRng| {
            let tail: Vec<Fr> = (0..4).map(|_| Fr::random(rng)).collect();
            let a = -(tail[0] * x[1] + tail[1] * x[2] + tail[2] * x[3] + tail[3] * x[4]);
            let mut v = vec![a];
            v.extend(tail);
            v
        };
        let v1 = mk_orth(&mut rng);
        let v2 = mk_orth(&mut rng);
        let v3 = mk_orth(&mut rng);
        let k1 = hpe.gen_key(&pk, &msk, &v1, &mut rng).unwrap();
        let k2 = hpe.delegate(&pk, &k1, &v2, &mut rng).unwrap();
        let k3 = hpe.delegate(&pk, &k2, &v3, &mut rng).unwrap();
        assert_eq!(k3.level, 3);
        let ct = hpe.encrypt_marker(&pk, &x, &mut rng).unwrap();
        assert!(hpe.test(&pk, &k3, &ct).unwrap());
    }

    #[test]
    fn rerandomized_key_works_and_differs() {
        let (hpe, pk, msk, mut rng) = setup(3, 211);
        let (x, v) = orthogonal_pair(&mut rng);
        let key = hpe.gen_key(&pk, &msk, &v, &mut rng).unwrap();
        let rr = hpe.rerandomize(&key, &mut rng).unwrap();
        assert_ne!(rr.dec, key.dec, "unlinkable to the original");
        let ct = hpe.encrypt_marker(&pk, &x, &mut rng).unwrap();
        assert!(hpe.test(&pk, &rr, &ct).unwrap());
        // still rejects non-matching ciphertexts
        let x_bad = vec![
            Fr::random(&mut rng),
            Fr::random(&mut rng),
            Fr::random(&mut rng),
        ];
        let ct_bad = hpe.encrypt_marker(&pk, &x_bad, &mut rng).unwrap();
        assert!(!hpe.test(&pk, &rr, &ct_bad).unwrap());
        // delegation still works after re-randomization
        let k2 = hpe.delegate(&pk, &rr, &v, &mut rng).unwrap();
        assert!(hpe.test(&pk, &k2, &ct).unwrap());
        // finalized keys cannot be re-randomized
        assert!(hpe.rerandomize(&key.finalize(), &mut rng).is_err());
    }

    #[test]
    fn finalized_key_still_searches_but_cannot_delegate() {
        let (hpe, pk, msk, mut rng) = setup(3, 205);
        let (x, v) = orthogonal_pair(&mut rng);
        let key = hpe.gen_key(&pk, &msk, &v, &mut rng).unwrap();
        let fin = key.finalize();
        assert!(!fin.can_delegate());
        let ct = hpe.encrypt_marker(&pk, &x, &mut rng).unwrap();
        assert!(hpe.test(&pk, &fin, &ct).unwrap());
        let err = hpe.delegate(&pk, &fin, &v, &mut rng).unwrap_err();
        assert_eq!(err, HpeError::KeyNotDelegatable);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (hpe, pk, msk, mut rng) = setup(3, 206);
        let short = vec![Fr::one(); 2];
        assert!(matches!(
            hpe.gen_key(&pk, &msk, &short, &mut rng),
            Err(HpeError::DimensionMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            hpe.encrypt_marker(&pk, &short, &mut rng),
            Err(HpeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_predicate_rejected() {
        let (hpe, pk, msk, mut rng) = setup(3, 207);
        let zero = vec![Fr::ZERO; 3];
        assert_eq!(
            hpe.gen_key(&pk, &msk, &zero, &mut rng).unwrap_err(),
            HpeError::ZeroPredicate
        );
    }

    #[test]
    fn key_and_ciphertext_encoding_roundtrip() {
        let (hpe, pk, msk, mut rng) = setup(3, 208);
        let (x, v) = orthogonal_pair(&mut rng);
        let key = hpe.gen_key(&pk, &msk, &v, &mut rng).unwrap();
        let ct = hpe.encrypt_marker(&pk, &x, &mut rng).unwrap();
        let params = hpe.params();

        let mut w = apks_math::encode::Writer::new();
        key.encode(params, &mut w);
        let buf = w.finish();
        assert_eq!(buf.len(), key.encoded_size());
        let mut r = apks_math::encode::Reader::new(&buf);
        let key2 = HpeSecretKey::decode(params, &mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(key, key2);

        let mut w = apks_math::encode::Writer::new();
        ct.encode(params, &mut w);
        let buf = w.finish();
        assert_eq!(buf.len(), HpeCiphertext::encoded_size(hpe.n0()));
        let mut r = apks_math::encode::Reader::new(&buf);
        let ct2 = HpeCiphertext::decode(params, &mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(ct, ct2);
        // decoded objects still work
        assert!(hpe.test(&pk, &key2, &ct2).unwrap());
    }

    #[test]
    fn public_key_encoding_roundtrip() {
        let (hpe, pk, _msk, _rng) = setup(2, 209);
        let params = hpe.params();
        let mut w = apks_math::encode::Writer::new();
        pk.encode(params, &mut w);
        let buf = w.finish();
        assert_eq!(buf.len(), pk.encoded_size());
        let mut r = apks_math::encode::Reader::new(&buf);
        let pk2 = HpePublicKey::decode(params, &mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(pk, pk2);
    }
}
