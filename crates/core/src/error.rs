//! The APKS error type.

use core::fmt;

/// Errors surfaced by the APKS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApksError {
    /// A schema was internally inconsistent (duplicate field names, zero
    /// degree, empty hierarchy, …).
    InvalidSchema(String),
    /// A record did not match the schema (wrong arity or value kind).
    InvalidRecord(String),
    /// Stored bytes failed an integrity check (truncation, bit flips, a
    /// checksum mismatch) — the data is damaged, not merely malformed.
    Corrupted(String),
    /// A query referenced an unknown field.
    UnknownField(String),
    /// A query term was not expressible under the schema (range not a
    /// union of ≤ d same-level simple ranges, too many OR terms, …).
    UnsupportedQuery(String),
    /// The query violates the active [`crate::QueryPolicy`].
    PolicyViolation(String),
    /// A value failed hierarchy lookup (e.g. out-of-range number).
    ValueNotInHierarchy(String),
    /// A checksum-valid bundle whose body failed structural decode —
    /// the integrity trailer proves the bytes are exactly what the
    /// writer produced, so this is a format bug in the writer or the
    /// decoder, not damaged or foreign caller data. Names the field
    /// that failed.
    FormatBug {
        /// The bundle field that failed to decode.
        field: &'static str,
        /// What went wrong inside that field.
        detail: String,
    },
    /// Query text failed to parse.
    Parse(String),
    /// An error bubbled up from the HPE layer.
    Hpe(apks_hpe::HpeError),
    /// A capability cannot be delegated (it was finalized).
    NotDelegatable,
}

impl fmt::Display for ApksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApksError::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            ApksError::InvalidRecord(m) => write!(f, "invalid record: {m}"),
            ApksError::Corrupted(m) => write!(f, "corrupted data: {m}"),
            ApksError::UnknownField(name) => write!(f, "unknown field: {name}"),
            ApksError::UnsupportedQuery(m) => write!(f, "unsupported query: {m}"),
            ApksError::PolicyViolation(m) => write!(f, "policy violation: {m}"),
            ApksError::ValueNotInHierarchy(m) => write!(f, "value not in hierarchy: {m}"),
            ApksError::FormatBug { field, detail } => {
                write!(
                    f,
                    "format bug in checksum-valid bundle, field `{field}`: {detail}"
                )
            }
            ApksError::Parse(m) => write!(f, "query parse error: {m}"),
            ApksError::Hpe(e) => write!(f, "hpe error: {e}"),
            ApksError::NotDelegatable => write!(f, "capability was finalized"),
        }
    }
}

impl std::error::Error for ApksError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApksError::Hpe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<apks_hpe::HpeError> for ApksError {
    fn from(e: apks_hpe::HpeError) -> Self {
        ApksError::Hpe(e)
    }
}
