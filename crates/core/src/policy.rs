//! Query policies — the statistical-attack countermeasure of §VI.
//!
//! With background knowledge of keyword frequencies, a curious server can
//! guess the keywords behind a capability from its match *rate*. The
//! paper's countermeasure is to require every authorized query to
//! constrain at least a minimum number of dimensions, diluting per-keyword
//! frequency signals. [`QueryPolicy`] encodes that requirement (and a cap
//! on total OR terms, which bounds the information a single capability
//! can sweep).

use crate::error::ApksError;
use crate::query::ConvertedQuery;

/// Authority-side constraints a query must meet before a capability is
/// issued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPolicy {
    /// Minimum number of constrained dimensions (§VI: "require each query
    /// must contain no less than a certain number of dimensions").
    pub min_dimensions: usize,
    /// Maximum total OR terms across all dimensions (0 = unlimited).
    pub max_total_or_terms: usize,
}

impl Default for QueryPolicy {
    fn default() -> Self {
        QueryPolicy {
            min_dimensions: 1,
            max_total_or_terms: 0,
        }
    }
}

impl QueryPolicy {
    /// A policy with only the non-empty-query requirement.
    pub fn permissive() -> QueryPolicy {
        QueryPolicy::default()
    }

    /// Checks a converted query.
    ///
    /// # Errors
    ///
    /// Returns [`ApksError::PolicyViolation`] when a limit is breached.
    pub fn check(&self, query: &ConvertedQuery) -> Result<(), ApksError> {
        if query.dimensions() < self.min_dimensions {
            return Err(ApksError::PolicyViolation(format!(
                "query constrains {} dimension(s); policy requires at least {}",
                query.dimensions(),
                self.min_dimensions
            )));
        }
        if self.max_total_or_terms > 0 {
            let total: usize = query.terms.iter().map(|t| t.keywords.len()).sum();
            if total > self.max_total_or_terms {
                return Err(ApksError::PolicyViolation(format!(
                    "query uses {total} OR terms; policy allows at most {}",
                    self.max_total_or_terms
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::schema::Schema;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::builder()
            .flat_field("a", 3)
            .flat_field("b", 3)
            .build()
            .unwrap()
    }

    #[test]
    fn min_dimensions_enforced() {
        let s = schema();
        let policy = QueryPolicy {
            min_dimensions: 2,
            max_total_or_terms: 0,
        };
        let one = Query::new().equals("a", "x").convert(&s).unwrap();
        assert!(matches!(
            policy.check(&one),
            Err(ApksError::PolicyViolation(_))
        ));
        let two = Query::new()
            .equals("a", "x")
            .equals("b", "y")
            .convert(&s)
            .unwrap();
        assert!(policy.check(&two).is_ok());
    }

    #[test]
    fn or_budget_enforced() {
        let s = schema();
        let policy = QueryPolicy {
            min_dimensions: 1,
            max_total_or_terms: 3,
        };
        let q = Query::new()
            .one_of("a", ["x", "y"])
            .one_of("b", ["u", "v"])
            .convert(&s)
            .unwrap();
        assert!(policy.check(&q).is_err());
        let q2 = Query::new()
            .one_of("a", ["x", "y"])
            .equals("b", "u")
            .convert(&s)
            .unwrap();
        assert!(policy.check(&q2).is_ok());
    }

    #[test]
    fn default_rejects_empty() {
        let s = schema();
        let empty = Query::new().convert(&s).unwrap();
        assert!(QueryPolicy::default().check(&empty).is_err());
    }
}
