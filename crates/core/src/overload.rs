//! Work-bounding primitives: deadlines and pairing budgets.
//!
//! The paper pushes the heavy pairing work onto the cloud/proxy tier
//! (§VII), which makes that tier the one that falls over under load: a
//! corpus scan costs `n + 3` pairings *per document*, so a request
//! nobody is waiting for anymore keeps burning real work unless
//! something bounds it. This module provides the two bounds the
//! overload-protection layer threads through every search/ingest call:
//!
//! * [`Deadline`] — an absolute expiry instant on the deployment's
//!   [`VirtualClock`](crate::fault::VirtualClock) (or any tick source).
//!   Checked at cheap points — before each proxy stage, before each
//!   document evaluation — so an expired request stops consuming
//!   pairings mid-scan instead of completing work that will be thrown
//!   away.
//! * [`Budget`] — a shared, atomically-charged pairing allowance. Where
//!   the deadline bounds *when* work may happen, the budget bounds *how
//!   much*; a scan that exhausts it returns a partial, explicitly
//!   accounted result.
//!
//! Both are deterministic by construction: expiry is a pure comparison
//! against a tick the caller controls, and budget charges are exact
//! integer arithmetic — same-seed chaos runs replay identically.

use std::sync::atomic::{AtomicU64, Ordering};

/// An absolute expiry instant in virtual ticks.
///
/// `Deadline` is a plain comparison, not a timer: code holding one asks
/// [`Deadline::expired_at`] with the current clock reading at points
/// where abandoning the request is cheap and safe. The sentinel
/// [`Deadline::NEVER`] (tick `u64::MAX`) never expires and is what
/// legacy entry points without deadline plumbing pass through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline {
    expires_at: u64,
}

impl Deadline {
    /// A deadline that never expires.
    pub const NEVER: Deadline = Deadline {
        expires_at: u64::MAX,
    };

    /// A deadline expiring at absolute tick `tick`.
    pub fn at(tick: u64) -> Deadline {
        Deadline { expires_at: tick }
    }

    /// A deadline `ticks` after `now` (saturating: a huge allowance is
    /// [`Deadline::NEVER`]).
    pub fn after(now: u64, ticks: u64) -> Deadline {
        Deadline {
            expires_at: now.saturating_add(ticks),
        }
    }

    /// The absolute expiry tick (`u64::MAX` for [`Deadline::NEVER`]).
    pub fn expires_at(&self) -> u64 {
        self.expires_at
    }

    /// True iff the deadline has passed at clock reading `now`.
    ///
    /// The expiry tick itself is *expired*: a request due "by tick 10"
    /// that is still queued at tick 10 has missed its deadline.
    /// [`Deadline::NEVER`] never expires (a clock cannot reach
    /// `u64::MAX` by finite advances).
    pub fn expired_at(&self, now: u64) -> bool {
        self.expires_at != u64::MAX && now >= self.expires_at
    }

    /// Ticks remaining before expiry at clock reading `now` (zero once
    /// expired, `u64::MAX` for [`Deadline::NEVER`]).
    pub fn remaining_at(&self, now: u64) -> u64 {
        if self.expires_at == u64::MAX {
            u64::MAX
        } else {
            self.expires_at.saturating_sub(now)
        }
    }

    /// True iff this is the non-expiring sentinel.
    pub fn is_never(&self) -> bool {
        self.expires_at == u64::MAX
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::NEVER
    }
}

/// A shared pairing budget, charged atomically as the scan spends work.
///
/// The budget is *request-scoped* but thread-safe: a parallel scan's
/// workers all charge the same allowance, and a charge either fits
/// entirely or is refused entirely — no partial debits, so accounting
/// stays exact. [`Budget::unlimited`] (the `u64::MAX` sentinel) is never
/// decremented and therefore never exhausts.
#[derive(Debug)]
pub struct Budget {
    remaining: AtomicU64,
}

impl Budget {
    /// A budget that never exhausts.
    pub fn unlimited() -> Budget {
        Budget {
            remaining: AtomicU64::new(u64::MAX),
        }
    }

    /// A budget allowing `pairings` pairing evaluations.
    pub fn pairings(pairings: u64) -> Budget {
        Budget {
            remaining: AtomicU64::new(pairings),
        }
    }

    /// Attempts to charge `cost` pairings; `true` iff the whole cost
    /// fit. A refused charge leaves the budget untouched. The unlimited
    /// sentinel always fits and is never decremented.
    ///
    /// An exhausted budget refuses *every* charge, including zero-cost
    /// ones: "may I do more work?" must answer no once the allowance is
    /// spent, or a scan whose per-step cost rounds to zero would run
    /// forever on an empty budget.
    pub fn try_charge(&self, cost: u64) -> bool {
        self.remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |rem| {
                if rem == u64::MAX {
                    Some(rem) // unlimited: admit without spending
                } else if rem == 0 {
                    None // exhausted: even zero-cost work is refused
                } else {
                    rem.checked_sub(cost)
                }
            })
            .is_ok()
    }

    /// Pairings still available (`u64::MAX` when unlimited).
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }

    /// True iff this budget never exhausts.
    pub fn is_unlimited(&self) -> bool {
        self.remaining() == u64::MAX
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Clone for Budget {
    fn clone(&self) -> Self {
        Budget {
            remaining: AtomicU64::new(self.remaining()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_never_expires() {
        assert!(!Deadline::NEVER.expired_at(0));
        assert!(!Deadline::NEVER.expired_at(u64::MAX));
        assert!(Deadline::NEVER.is_never());
        assert_eq!(Deadline::NEVER.remaining_at(u64::MAX), u64::MAX);
        assert_eq!(Deadline::default(), Deadline::NEVER);
    }

    #[test]
    fn expiry_is_inclusive_of_the_deadline_tick() {
        let d = Deadline::at(10);
        assert!(!d.expired_at(9));
        assert!(d.expired_at(10), "the expiry tick itself is expired");
        assert!(d.expired_at(11));
        assert_eq!(d.remaining_at(7), 3);
        assert_eq!(d.remaining_at(10), 0);
        assert_eq!(d.remaining_at(99), 0);
    }

    #[test]
    fn after_is_relative_and_saturating() {
        assert_eq!(Deadline::after(5, 10), Deadline::at(15));
        assert_eq!(Deadline::after(5, u64::MAX), Deadline::NEVER);
        // tick u64::MAX - 1 is a real (reachable) deadline
        assert!(!Deadline::after(u64::MAX - 2, 1).is_never());
    }

    #[test]
    fn budget_charges_exactly_or_not_at_all() {
        let b = Budget::pairings(10);
        assert!(b.try_charge(4));
        assert_eq!(b.remaining(), 6);
        assert!(!b.try_charge(7), "7 > 6 must be refused");
        assert_eq!(b.remaining(), 6, "refused charge spends nothing");
        assert!(b.try_charge(0), "zero-cost charge fits while solvent");
        assert!(b.try_charge(6));
        assert_eq!(b.remaining(), 0);
        assert!(!b.try_charge(1));
        assert!(
            !b.try_charge(0),
            "an exhausted budget refuses even zero-cost work"
        );
    }

    #[test]
    fn unlimited_budget_never_decrements() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..4 {
            assert!(b.try_charge(u64::MAX / 2));
        }
        assert_eq!(b.remaining(), u64::MAX);
        assert_eq!(Budget::default().remaining(), u64::MAX);
    }

    #[test]
    fn budget_clone_copies_the_current_balance() {
        let b = Budget::pairings(5);
        assert!(b.try_charge(2));
        let c = b.clone();
        assert_eq!(c.remaining(), 3);
        assert!(c.try_charge(3));
        // independent balances after the clone
        assert_eq!(b.remaining(), 3);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn concurrent_charges_never_overspend() {
        use std::sync::Arc;
        let b = Arc::new(Budget::pairings(1000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                (0..500).filter(|_| b.try_charge(1)).count()
            }));
        }
        let granted: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(granted, 1000, "exactly the budget is granted");
        assert_eq!(b.remaining(), 0);
    }
}
