//! Field values and their mapping into `F_q` keywords.
//!
//! Every attribute value — a number, a category label, a hierarchy node —
//! becomes a *keyword* in `F_q` via a domain-separated hash, exactly as the
//! paper maps keywords with `H : {0,1}* → F_q` (§II-D). The domain string
//! binds the field name and sub-field level, so "Boston" under `region`
//! can never collide with "Boston" under `provider`.

use apks_math::hash::hash_to_fr;
use apks_math::Fr;
use core::fmt;

/// A plaintext value of one index field.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FieldValue {
    /// A numeric value (ages, lab values, day indexes, …).
    Num(i64),
    /// A categorical value ("female", "diabetes", "Hospital A", …).
    Text(String),
}

impl FieldValue {
    /// Shorthand numeric constructor.
    pub fn num(v: i64) -> FieldValue {
        FieldValue::Num(v)
    }

    /// Shorthand text constructor.
    pub fn text(s: impl Into<String>) -> FieldValue {
        FieldValue::Text(s.into())
    }

    /// The canonical label used for hashing and hierarchy lookup.
    pub fn label(&self) -> String {
        match self {
            FieldValue::Num(v) => v.to_string(),
            FieldValue::Text(s) => s.clone(),
        }
    }

    /// The numeric payload, if any.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            FieldValue::Num(v) => Some(*v),
            FieldValue::Text(_) => None,
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Num(v) => write!(f, "{v}"),
            FieldValue::Text(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Num(v)
    }
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Text(s.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(s: String) -> Self {
        FieldValue::Text(s)
    }
}

/// Hashes a keyword (node label) for a given field and sub-field level
/// into `F_q`.
pub fn keyword(field: &str, level: usize, label: &str) -> Fr {
    let domain = format!("apks:kw:{field}:{level}");
    hash_to_fr(&domain, label.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_domain_separation() {
        let a = keyword("region", 0, "Boston");
        let b = keyword("provider", 0, "Boston");
        let c = keyword("region", 1, "Boston");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, keyword("region", 0, "Boston"));
    }

    #[test]
    fn labels() {
        assert_eq!(FieldValue::num(25).label(), "25");
        assert_eq!(FieldValue::text("flu").label(), "flu");
        assert_eq!(FieldValue::from(-3).label(), "-3");
    }
}
