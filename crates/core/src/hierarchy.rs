//! Attribute hierarchies (§IV-C, Fig. 3 of the paper).
//!
//! A hierarchy over a field is a balanced tree in which every internal node
//! represents the union of its children: intervals for numeric fields
//! ("0-100" → "0-30" → "0-10"), *semantic containment* for categorical
//! fields ("MA" ⊐ "East MA" ⊐ "Boston"). A node at level `l` is a
//! *level-`l` simple range*; a range query selects up to `d` simple ranges
//! from one level, turning an `O(N)`-term OR into a handful of equality
//! terms.
//!
//! Every leaf sits at the same depth, so each field value has a well-defined
//! *path* `P(z)` from root to leaf — the per-level entries of the expanded
//! index (Fig. 4(a)).

use crate::error::ApksError;
use core::fmt;

/// One node of a hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// The node's keyword label (hashed into the index/query).
    pub label: String,
    /// Closed interval covered by this node, for numeric hierarchies.
    pub interval: Option<(i64, i64)>,
    /// Children (empty for leaves).
    pub children: Vec<Node>,
}

impl Node {
    /// A semantic (label-only) node.
    pub fn semantic(label: impl Into<String>, children: Vec<Node>) -> Node {
        Node {
            label: label.into(),
            interval: None,
            children,
        }
    }

    /// A semantic leaf.
    pub fn leaf(label: impl Into<String>) -> Node {
        Node::semantic(label, Vec::new())
    }

    fn contains_num(&self, v: i64) -> bool {
        self.interval.is_some_and(|(lo, hi)| lo <= v && v <= hi)
    }
}

/// A balanced attribute hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hierarchy {
    root: Node,
    depth: usize,
}

impl Hierarchy {
    /// Builds a balanced numeric hierarchy over the closed interval
    /// `[lo, hi]` with the given branching factor: leaves are the single
    /// values, each upper level groups `branching` consecutive nodes.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `branching < 2`.
    pub fn numeric(lo: i64, hi: i64, branching: usize) -> Hierarchy {
        assert!(lo <= hi, "empty interval");
        assert!(branching >= 2, "branching factor must be at least 2");
        // bottom level: singletons
        let mut level: Vec<Node> = (lo..=hi)
            .map(|v| Node {
                label: v.to_string(),
                interval: Some((v, v)),
                children: Vec::new(),
            })
            .collect();
        while level.len() > 1 {
            let mut upper = Vec::with_capacity(level.len().div_ceil(branching));
            for chunk in level.chunks(branching) {
                let lo = chunk.first().unwrap().interval.unwrap().0;
                let hi = chunk.last().unwrap().interval.unwrap().1;
                upper.push(Node {
                    label: format!("{lo}-{hi}"),
                    interval: Some((lo, hi)),
                    children: chunk.to_vec(),
                });
            }
            level = upper;
        }
        let root = level.pop().unwrap();
        let depth = Self::measure_depth(&root);
        Hierarchy { root, depth }
    }

    /// Builds a semantic hierarchy from an explicit tree.
    ///
    /// # Errors
    ///
    /// Fails unless all leaves are at the same depth and labels within
    /// each level are unique.
    pub fn semantic(root: Node) -> Result<Hierarchy, ApksError> {
        let mut depths = Vec::new();
        collect_leaf_depths(&root, 1, &mut depths);
        let Some(&d) = depths.first() else {
            return Err(ApksError::InvalidSchema("empty hierarchy".into()));
        };
        if depths.iter().any(|&x| x != d) {
            return Err(ApksError::InvalidSchema(
                "hierarchy is unbalanced (leaves at differing depths)".into(),
            ));
        }
        let h = Hierarchy { root, depth: d };
        for l in 0..d {
            let labels: Vec<&str> = h.level_nodes(l).iter().map(|n| n.label.as_str()).collect();
            let mut sorted = labels.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != labels.len() {
                return Err(ApksError::InvalidSchema(format!(
                    "duplicate label at hierarchy level {l}"
                )));
            }
        }
        Ok(h)
    }

    fn measure_depth(root: &Node) -> usize {
        let mut d = 1;
        let mut cur = root;
        while let Some(first) = cur.children.first() {
            d += 1;
            cur = first;
        }
        d
    }

    /// Number of levels (the paper's *expansion factor* `k`).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// All nodes at level `l` (level 0 = root), left to right.
    pub fn level_nodes(&self, l: usize) -> Vec<&Node> {
        let mut cur = vec![&self.root];
        for _ in 0..l {
            cur = cur.iter().flat_map(|n| n.children.iter()).collect();
        }
        cur
    }

    /// The root-to-leaf path for a numeric value.
    ///
    /// # Errors
    ///
    /// Fails if the value lies outside the hierarchy.
    pub fn path_for_num(&self, v: i64) -> Result<Vec<&Node>, ApksError> {
        if !self.root.contains_num(v) {
            return Err(ApksError::ValueNotInHierarchy(format!(
                "{v} outside {}",
                self.root.label
            )));
        }
        let mut path = vec![&self.root];
        let mut cur = &self.root;
        while !cur.children.is_empty() {
            cur = cur
                .children
                .iter()
                .find(|c| c.contains_num(v))
                .ok_or_else(|| ApksError::ValueNotInHierarchy(format!("{v} fell into a gap")))?;
            path.push(cur);
        }
        Ok(path)
    }

    /// The root-to-leaf path for a leaf label (semantic hierarchies).
    ///
    /// # Errors
    ///
    /// Fails if no leaf carries the label.
    pub fn path_for_label(&self, label: &str) -> Result<Vec<&Node>, ApksError> {
        fn dfs<'a>(node: &'a Node, label: &str, path: &mut Vec<&'a Node>) -> bool {
            path.push(node);
            if node.children.is_empty() && node.label == label {
                return true;
            }
            for c in &node.children {
                if dfs(c, label, path) {
                    return true;
                }
            }
            path.pop();
            false
        }
        let mut path = Vec::new();
        if dfs(&self.root, label, &mut path) {
            Ok(path)
        } else {
            Err(ApksError::ValueNotInHierarchy(format!(
                "no leaf labelled {label:?}"
            )))
        }
    }

    /// Finds any node (internal or leaf) with the given label; returns
    /// `(level, node)`.
    pub fn locate(&self, label: &str) -> Option<(usize, &Node)> {
        for l in 0..self.depth {
            if let Some(n) = self.level_nodes(l).into_iter().find(|n| n.label == label) {
                return Some((l, n));
            }
        }
        None
    }

    /// Expresses the closed numeric range `[s, t]` as at most `max_nodes`
    /// *simple ranges of a single level* (the paper's query class).
    ///
    /// Levels are scanned root-down; among levels whose nodes cover
    /// `[s, t]` exactly, the one needing fewest nodes wins.
    ///
    /// # Errors
    ///
    /// Fails when no level covers the range exactly within the budget —
    /// such ranges are outside the supported query class (§IV-C: "we only
    /// consider the class of range queries containing simple ranges from
    /// one specific level").
    pub fn cover_range(
        &self,
        s: i64,
        t: i64,
        max_nodes: usize,
    ) -> Result<(usize, Vec<&Node>), ApksError> {
        if s > t {
            return Err(ApksError::UnsupportedQuery(format!(
                "empty range [{s}, {t}]"
            )));
        }
        let mut best: Option<(usize, Vec<&Node>)> = None;
        for l in 0..self.depth {
            let nodes: Vec<&Node> = self
                .level_nodes(l)
                .into_iter()
                .filter(|n| n.interval.is_some_and(|(lo, hi)| hi >= s && lo <= t))
                .collect();
            if nodes.is_empty() {
                continue;
            }
            let lo = nodes.first().unwrap().interval.unwrap().0;
            let hi = nodes.last().unwrap().interval.unwrap().1;
            if lo == s && hi == t && nodes.len() <= max_nodes {
                match &best {
                    Some((_, b)) if b.len() <= nodes.len() => {}
                    _ => best = Some((l, nodes)),
                }
            }
        }
        best.ok_or_else(|| {
            ApksError::UnsupportedQuery(format!(
                "[{s}, {t}] is not a union of ≤ {max_nodes} same-level simple ranges"
            ))
        })
    }
}

impl fmt::Display for Hierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hierarchy({}, depth {})", self.root.label, self.depth)
    }
}

fn collect_leaf_depths(node: &Node, depth: usize, out: &mut Vec<usize>) {
    if node.children.is_empty() {
        out.push(depth);
    } else {
        for c in &node.children {
            collect_leaf_depths(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region_hierarchy() -> Hierarchy {
        Hierarchy::semantic(Node::semantic(
            "MA",
            vec![
                Node::semantic(
                    "East MA",
                    vec![Node::leaf("Boston"), Node::leaf("Cambridge")],
                ),
                Node::semantic(
                    "West MA",
                    vec![Node::leaf("Worcester"), Node::leaf("Springfield")],
                ),
            ],
        ))
        .unwrap()
    }

    #[test]
    fn numeric_structure() {
        let h = Hierarchy::numeric(0, 15, 4);
        assert_eq!(h.depth(), 3); // 16 → 4 → 1
        assert_eq!(h.level_nodes(0).len(), 1);
        assert_eq!(h.level_nodes(1).len(), 4);
        assert_eq!(h.level_nodes(2).len(), 16);
        assert_eq!(h.root().label, "0-15");
    }

    #[test]
    fn numeric_path() {
        let h = Hierarchy::numeric(0, 15, 4);
        let path = h.path_for_num(6).unwrap();
        let labels: Vec<&str> = path.iter().map(|n| n.label.as_str()).collect();
        assert_eq!(labels, vec!["0-15", "4-7", "6"]);
        assert!(h.path_for_num(16).is_err());
        assert!(h.path_for_num(-1).is_err());
    }

    #[test]
    fn semantic_path_and_locate() {
        let h = region_hierarchy();
        assert_eq!(h.depth(), 3);
        let path = h.path_for_label("Worcester").unwrap();
        let labels: Vec<&str> = path.iter().map(|n| n.label.as_str()).collect();
        assert_eq!(labels, vec!["MA", "West MA", "Worcester"]);
        let (level, node) = h.locate("East MA").unwrap();
        assert_eq!(level, 1);
        assert_eq!(node.label, "East MA");
        assert!(h.locate("NYC").is_none());
        assert!(h.path_for_label("East MA").is_err()); // not a leaf
    }

    #[test]
    fn unbalanced_semantic_rejected() {
        let bad = Node::semantic(
            "root",
            vec![Node::leaf("a"), Node::semantic("b", vec![Node::leaf("c")])],
        );
        assert!(matches!(
            Hierarchy::semantic(bad),
            Err(ApksError::InvalidSchema(_))
        ));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let bad = Node::semantic("root", vec![Node::leaf("x"), Node::leaf("x")]);
        assert!(Hierarchy::semantic(bad).is_err());
    }

    #[test]
    fn cover_range_exact_levels() {
        let h = Hierarchy::numeric(0, 15, 4);
        // whole tree: root alone
        let (l, nodes) = h.cover_range(0, 15, 5).unwrap();
        assert_eq!((l, nodes.len()), (0, 1));
        // one level-1 block
        let (l, nodes) = h.cover_range(4, 7, 5).unwrap();
        assert_eq!((l, nodes.len()), (1, 1));
        assert_eq!(nodes[0].label, "4-7");
        // two level-1 blocks
        let (l, nodes) = h.cover_range(4, 11, 5).unwrap();
        assert_eq!((l, nodes.len()), (1, 2));
        // misaligned range needs leaves
        let (l, nodes) = h.cover_range(5, 6, 5).unwrap();
        assert_eq!((l, nodes.len()), (2, 2));
        // misaligned and too wide for the budget
        assert!(h.cover_range(1, 14, 5).is_err());
    }

    #[test]
    fn cover_range_respects_budget() {
        let h = Hierarchy::numeric(0, 15, 4);
        // [0,7] = 2 level-1 nodes; with budget 1 it's inexpressible
        assert!(h.cover_range(0, 7, 1).is_err());
        let (l, nodes) = h.cover_range(0, 7, 2).unwrap();
        assert_eq!((l, nodes.len()), (1, 2));
    }

    #[test]
    fn numeric_non_power_sizes() {
        let h = Hierarchy::numeric(1, 10, 3); // 10 values, branching 3
        assert!(h.depth() >= 3);
        for v in 1..=10 {
            let p = h.path_for_num(v).unwrap();
            assert_eq!(p.len(), h.depth());
            assert_eq!(p.last().unwrap().label, v.to_string());
        }
    }
}
