//! Persistence — saving and loading a deployment.
//!
//! A real multi-owner deployment needs its schema, public key and (at the
//! TA) master key to survive process restarts and to travel between the
//! TA, owners, users and the server. This module provides a canonical
//! binary format for all of them, bundled as a [`SavedDeployment`]:
//!
//! ```text
//! magic "APKS" | version | curve label | schema | pk | optional msk(+r)
//! ```
//!
//! Loading re-derives the [`crate::ApksSystem`] (and re-checks the schema
//! digest), so decoded objects interoperate with freshly created ones.

use crate::error::ApksError;
use crate::hierarchy::{Hierarchy, Node};
use crate::schema::{Field, FieldKind, Schema};
use crate::scheme::{ApksMasterKey, ApksPlusMasterKey, ApksPublicKey, ApksSystem};
use apks_curve::CurveParams;
use apks_hpe::{HpeMasterKey, HpePublicKey};
use apks_math::encode::{DecodeError, Reader, Writer};
use apks_math::Fr;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"APKS";
const VERSION: u8 = 1;

/// Encodes a hierarchy node recursively.
fn encode_node(node: &Node, w: &mut Writer) {
    w.string(&node.label);
    match node.interval {
        Some((lo, hi)) => {
            w.u8(1);
            w.u64(lo as u64);
            w.u64(hi as u64);
        }
        None => {
            w.u8(0);
        }
    }
    w.u32(node.children.len() as u32);
    for c in &node.children {
        encode_node(c, w);
    }
}

fn decode_node(r: &mut Reader<'_>, depth: usize) -> Result<Node, DecodeError> {
    if depth > 64 {
        return Err(DecodeError::Invalid("hierarchy too deep"));
    }
    let label = r.string()?;
    let interval = match r.u8()? {
        0 => None,
        1 => {
            let lo = r.u64()? as i64;
            let hi = r.u64()? as i64;
            Some((lo, hi))
        }
        _ => return Err(DecodeError::Invalid("interval tag")),
    };
    let count = r.u32()? as usize;
    if count > 1 << 20 {
        return Err(DecodeError::Invalid("oversized hierarchy node"));
    }
    let mut children = Vec::with_capacity(count);
    for _ in 0..count {
        children.push(decode_node(r, depth + 1)?);
    }
    Ok(Node {
        label,
        interval,
        children,
    })
}

/// Encodes a schema.
pub fn encode_schema(schema: &Schema, w: &mut Writer) {
    w.u32(schema.fields().len() as u32);
    for f in schema.fields() {
        w.string(&f.name);
        w.u32(f.max_or_terms as u32);
        match &f.kind {
            FieldKind::Flat => {
                w.u8(0);
            }
            FieldKind::Hierarchical(h) => {
                w.u8(1);
                encode_node(h.root(), w);
            }
        }
    }
}

/// Decodes a schema (re-validating every hierarchy).
///
/// # Errors
///
/// Returns an error on malformed bytes or an invalid schema.
pub fn decode_schema(r: &mut Reader<'_>) -> Result<Arc<Schema>, DecodeError> {
    let count = r.u32()? as usize;
    let mut builder = Schema::builder();
    for _ in 0..count {
        let name = r.string()?;
        let d = r.u32()? as usize;
        match r.u8()? {
            0 => {
                builder = builder.flat_field(name, d);
            }
            1 => {
                let root = decode_node(r, 0)?;
                let h = Hierarchy::semantic(root)
                    .map_err(|_| DecodeError::Invalid("unbalanced hierarchy"))?;
                builder = builder.hierarchical_field(name, h, d);
            }
            _ => return Err(DecodeError::Invalid("field kind tag")),
        }
    }
    builder
        .build()
        .map_err(|_| DecodeError::Invalid("schema validation"))
}

/// A deployment bundle: everything needed to reconstruct an
/// [`ApksSystem`] plus its keys.
#[derive(Clone, Debug)]
pub struct SavedDeployment {
    /// Curve parameter label (`"standard-512"` or `"fast-192"`).
    pub curve_label: String,
    /// The index schema.
    pub schema: Arc<Schema>,
    /// The public key.
    pub pk: ApksPublicKey,
    /// The master key, if this bundle belongs to the TA.
    pub msk: Option<ApksMasterKey>,
    /// The APKS⁺ blinding secret, if this is a query-private deployment.
    pub blinding: Option<Fr>,
}

impl SavedDeployment {
    /// Serializes the bundle.
    pub fn to_bytes(&self, params: &CurveParams) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u8(VERSION);
        w.string(&self.curve_label);
        encode_schema(&self.schema, &mut w);
        self.pk.hpe.encode(params, &mut w);
        match &self.msk {
            Some(msk) => {
                w.u8(1);
                msk.hpe.encode(params, &mut w);
            }
            None => {
                w.u8(0);
            }
        }
        match &self.blinding {
            Some(r) => {
                w.u8(1);
                w.bytes(&r.to_bytes());
            }
            None => {
                w.u8(0);
            }
        }
        w.finish()
    }

    /// Deserializes a bundle and reconstructs the system.
    ///
    /// The curve parameters are resolved from the recorded label.
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes, unknown curve labels, or version
    /// mismatches.
    pub fn from_bytes(bytes: &[u8]) -> Result<(ApksSystem, SavedDeployment), ApksError> {
        let mut r = Reader::new(bytes);
        let mut parse = || -> Result<(ApksSystem, SavedDeployment), DecodeError> {
            let magic = r.bytes(4)?;
            if magic != MAGIC {
                return Err(DecodeError::Invalid("magic"));
            }
            if r.u8()? != VERSION {
                return Err(DecodeError::Invalid("version"));
            }
            let curve_label = r.string()?;
            let params = match curve_label.as_str() {
                "standard-512" => CurveParams::standard(),
                "fast-192" => CurveParams::fast(),
                _ => return Err(DecodeError::Invalid("unknown curve label")),
            };
            let schema = decode_schema(&mut r)?;
            let system = ApksSystem::new(params.clone(), schema.clone());
            let hpe_pk = HpePublicKey::decode(&params, &mut r)?;
            if hpe_pk.n != schema.n() {
                return Err(DecodeError::Invalid("public key dimension"));
            }
            let pk = system.public_key_from_parts(hpe_pk);
            let msk = match r.u8()? {
                0 => None,
                1 => {
                    let hpe = HpeMasterKey::decode(&params, &mut r)?;
                    if hpe.b_star.dim() != schema.n() + 3 {
                        return Err(DecodeError::Invalid("master key dimension"));
                    }
                    Some(ApksMasterKey { hpe })
                }
                _ => return Err(DecodeError::Invalid("msk tag")),
            };
            let blinding = match r.u8()? {
                0 => None,
                1 => {
                    let b: [u8; 32] = r
                        .bytes(32)?
                        .try_into()
                        .map_err(|_| DecodeError::UnexpectedEnd)?;
                    Some(Fr::from_bytes(&b).ok_or(DecodeError::Invalid("blinding"))?)
                }
                _ => return Err(DecodeError::Invalid("blinding tag")),
            };
            r.finish()?;
            Ok((
                system,
                SavedDeployment {
                    curve_label,
                    schema,
                    pk,
                    msk,
                    blinding,
                },
            ))
        };
        parse().map_err(|e| ApksError::InvalidRecord(format!("deployment decode: {e}")))
    }

    /// Builds a bundle from a plain deployment.
    pub fn new(
        system: &ApksSystem,
        pk: &ApksPublicKey,
        msk: Option<&ApksMasterKey>,
    ) -> SavedDeployment {
        SavedDeployment {
            curve_label: system.params().label().to_string(),
            schema: system.schema().clone(),
            pk: pk.clone(),
            msk: msk.cloned(),
            blinding: None,
        }
    }

    /// Builds a bundle from an APKS⁺ deployment (records the blinding so
    /// proxies can be re-provisioned).
    pub fn new_plus(
        system: &ApksSystem,
        pk: &ApksPublicKey,
        mk: &ApksPlusMasterKey,
    ) -> SavedDeployment {
        SavedDeployment {
            curve_label: system.params().label().to_string(),
            schema: system.schema().clone(),
            pk: pk.clone(),
            msk: Some(mk.inner.clone()),
            blinding: Some(mk.blinding),
        }
    }

    /// Reassembles the APKS⁺ master key, if this bundle holds one.
    pub fn plus_master_key(&self) -> Option<ApksPlusMasterKey> {
        match (&self.msk, &self.blinding) {
            (Some(msk), Some(blinding)) => Some(ApksPlusMasterKey {
                inner: msk.clone(),
                blinding: *blinding,
            }),
            _ => None,
        }
    }
}

/// Convenience: field accessors used by the CLI's schema printer.
pub fn describe_schema(schema: &Schema) -> Vec<String> {
    schema
        .fields()
        .iter()
        .map(|f: &Field| match &f.kind {
            FieldKind::Flat => format!("{} (flat, d={})", f.name, f.max_or_terms),
            FieldKind::Hierarchical(h) => format!(
                "{} (hierarchical, depth={}, d={})",
                f.name,
                h.depth(),
                f.max_or_terms
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyword::FieldValue;
    use crate::policy::QueryPolicy;
    use crate::query::Query;
    use crate::schema::Record;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_schema() -> Arc<Schema> {
        Schema::builder()
            .hierarchical_field("age", Hierarchy::numeric(0, 15, 4), 2)
            .flat_field("sex", 1)
            .build()
            .unwrap()
    }

    #[test]
    fn schema_roundtrip() {
        let schema = sample_schema();
        let mut w = Writer::new();
        encode_schema(&schema, &mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        let back = decode_schema(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(*back, *schema);
    }

    #[test]
    fn deployment_roundtrip_interoperates() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1600);
        let (pk, msk) = system.setup(&mut rng);

        // owner encrypts under the original deployment
        let rec = Record::new(vec![FieldValue::num(6), FieldValue::text("female")]);
        let idx = system.gen_index(&pk, &rec, &mut rng).unwrap();

        // save + load
        let saved = SavedDeployment::new(&system, &pk, Some(&msk));
        let bytes = saved.to_bytes(&params);
        let (system2, loaded) = SavedDeployment::from_bytes(&bytes).unwrap();
        let msk2 = loaded.msk.clone().unwrap();

        // the reloaded TA can authorize searches over the old index
        let q = Query::new().range("age", 4, 7).equals("sex", "female");
        let cap = system2
            .gen_cap(&loaded.pk, &msk2, &q, &QueryPolicy::default(), &mut rng)
            .unwrap();
        assert!(system2.search(&loaded.pk, &cap, &idx).unwrap());
    }

    #[test]
    fn plus_deployment_roundtrip() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1601);
        let (pk, mk) = system.setup_plus(&mut rng);
        let saved = SavedDeployment::new_plus(&system, &pk, &mk);
        let bytes = saved.to_bytes(&params);
        let (system2, loaded) = SavedDeployment::from_bytes(&bytes).unwrap();
        let mk2 = loaded.plus_master_key().unwrap();
        assert_eq!(mk2.blinding, mk.blinding);

        // full APKS⁺ flow with the reloaded keys
        let rec = Record::new(vec![FieldValue::num(3), FieldValue::text("male")]);
        let partial = system2
            .gen_partial_index(&loaded.pk, &rec, &mut rng)
            .unwrap();
        let share = apks_hpe::ProxyTransformKey {
            r_inv: mk2.blinding.inv().unwrap(),
        };
        let full = crate::scheme::proxy_transform(&system2, &share, &partial);
        let cap = system2
            .gen_cap(
                &loaded.pk,
                &mk2.inner,
                &Query::new().equals("sex", "male"),
                &QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        assert!(system2.search(&loaded.pk, &cap, &full).unwrap());
    }

    #[test]
    fn corrupted_bundles_rejected() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1602);
        let (pk, _) = system.setup(&mut rng);
        let bytes = SavedDeployment::new(&system, &pk, None).to_bytes(&params);

        // bad magic
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(SavedDeployment::from_bytes(&bad).is_err());
        // truncation
        assert!(SavedDeployment::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        // trailing garbage
        let mut long = bytes.clone();
        long.push(0);
        assert!(SavedDeployment::from_bytes(&long).is_err());
    }

    #[test]
    fn truncation_at_every_length_yields_structured_errors() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1603);
        let (pk, mk) = system.setup_plus(&mut rng);
        let bytes = SavedDeployment::new_plus(&system, &pk, &mk).to_bytes(&params);
        // every strict prefix must fail with an error, never a panic: the
        // decoder either hits UnexpectedEnd mid-field, or finishes early
        // and trips the trailing/finish check. Exhaustive over the header
        // and schema region, strided through the (large) key material.
        let stride = (bytes.len() / 512).max(1);
        let lens = (0..bytes.len().min(128)).chain((128..bytes.len()).step_by(stride));
        for len in lens {
            let err = SavedDeployment::from_bytes(&bytes[..len])
                .expect_err(&format!("prefix of length {len} decoded"));
            assert!(
                matches!(err, ApksError::InvalidRecord(_)),
                "len {len}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn corrupted_bytes_never_panic() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1604);
        let (pk, mk) = system.setup_plus(&mut rng);
        let bytes = SavedDeployment::new_plus(&system, &pk, &mk).to_bytes(&params);
        // deterministic fuzz: flip bytes across the bundle (stride keeps
        // the test fast; offsets cover header, schema, keys and blinding)
        let stride = (bytes.len() / 192).max(1);
        for pos in (0..bytes.len()).step_by(stride) {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut bad = bytes.clone();
                bad[pos] ^= flip;
                // must return a structured Result — a panic fails the test
                let _ = SavedDeployment::from_bytes(&bad);
            }
        }
        // length-prefix corruption: blow up an interior u32 length field
        // (the curve-label prefix at offset 5) to an absurd value
        let mut bad = bytes.clone();
        bad[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(SavedDeployment::from_bytes(&bad).is_err());
    }

    #[test]
    fn roundtrip_is_stable_under_reencoding() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1605);
        let (pk, mk) = system.setup_plus(&mut rng);
        let bytes = SavedDeployment::new_plus(&system, &pk, &mk).to_bytes(&params);
        let (_, loaded) = SavedDeployment::from_bytes(&bytes).unwrap();
        // decode∘encode is the identity on canonical bytes
        assert_eq!(loaded.to_bytes(&params), bytes);
    }

    #[test]
    fn describe_schema_lists_fields() {
        let lines = describe_schema(&sample_schema());
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("hierarchical"));
        assert!(lines[1].contains("flat"));
    }
}
