//! Persistence — saving and loading a deployment.
//!
//! A real multi-owner deployment needs its schema, public key and (at the
//! TA) master key to survive process restarts and to travel between the
//! TA, owners, users and the server. This module provides a canonical
//! binary format for all of them, bundled as a [`SavedDeployment`]:
//!
//! ```text
//! magic "APKS" | version | curve label | schema | pk | optional msk(+r) | sha-256
//! ```
//!
//! Loading re-derives the [`crate::ApksSystem`] (and re-checks the schema
//! digest), so decoded objects interoperate with freshly created ones.
//!
//! Since version 2 the bundle ends in a SHA-256 checksum of everything
//! before it. Key material dominates the bundle, and a flipped bit deep
//! inside a group element decodes into *some* other valid-looking field
//! element — without the trailer, corruption surfaced as whatever decode
//! error happened to fire first (or, worse, not at all). Verification
//! happens before any field is decoded, so damage is reported as
//! [`ApksError::Corrupted`] with the real cause, never as a misleading
//! schema or key error. Version-1 bundles (no trailer) still load.

use crate::error::ApksError;
use crate::hierarchy::{Hierarchy, Node};
use crate::schema::{Field, FieldKind, Schema};
use crate::scheme::{ApksMasterKey, ApksPlusMasterKey, ApksPublicKey, ApksSystem};
use apks_curve::CurveParams;
use apks_hpe::{HpeMasterKey, HpePublicKey};
use apks_math::encode::{DecodeError, Reader, Writer};
use apks_math::Fr;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"APKS";
/// Current format version: version 2 appends the checksum trailer.
const VERSION: u8 = 2;
/// The last version without a checksum trailer (still decodable).
const VERSION_UNCHECKED: u8 = 1;
/// Length of the SHA-256 trailer appended since version 2.
const CHECKSUM_LEN: usize = 32;

/// Encodes a hierarchy node recursively.
fn encode_node(node: &Node, w: &mut Writer) {
    w.string(&node.label);
    match node.interval {
        Some((lo, hi)) => {
            w.u8(1);
            w.u64(lo as u64);
            w.u64(hi as u64);
        }
        None => {
            w.u8(0);
        }
    }
    w.u32(node.children.len() as u32);
    for c in &node.children {
        encode_node(c, w);
    }
}

fn decode_node(r: &mut Reader<'_>, depth: usize) -> Result<Node, DecodeError> {
    if depth > 64 {
        return Err(DecodeError::Invalid("hierarchy too deep"));
    }
    let label = r.string()?;
    let interval = match r.u8()? {
        0 => None,
        1 => {
            let lo = r.u64()? as i64;
            let hi = r.u64()? as i64;
            Some((lo, hi))
        }
        _ => return Err(DecodeError::Invalid("interval tag")),
    };
    // a child node is at least 9 bytes (label length prefix, interval
    // tag, child count); `count` refuses declarations that cannot fit
    // the remaining input before the Vec is sized for them
    let count = r.count(9)?;
    if count > 1 << 20 {
        return Err(DecodeError::Invalid("oversized hierarchy node"));
    }
    let mut children = Vec::with_capacity(count);
    for _ in 0..count {
        children.push(decode_node(r, depth + 1)?);
    }
    Ok(Node {
        label,
        interval,
        children,
    })
}

/// Encodes a schema.
pub fn encode_schema(schema: &Schema, w: &mut Writer) {
    w.u32(schema.fields().len() as u32);
    for f in schema.fields() {
        w.string(&f.name);
        w.u32(f.max_or_terms as u32);
        match &f.kind {
            FieldKind::Flat => {
                w.u8(0);
            }
            FieldKind::Hierarchical(h) => {
                w.u8(1);
                encode_node(h.root(), w);
            }
        }
    }
}

/// Decodes a schema (re-validating every hierarchy).
///
/// # Errors
///
/// Returns an error on malformed bytes or an invalid schema.
pub fn decode_schema(r: &mut Reader<'_>) -> Result<Arc<Schema>, DecodeError> {
    let count = r.u32()? as usize;
    let mut builder = Schema::builder();
    for _ in 0..count {
        let name = r.string()?;
        let d = r.u32()? as usize;
        match r.u8()? {
            0 => {
                builder = builder.flat_field(name, d);
            }
            1 => {
                let root = decode_node(r, 0)?;
                let h = Hierarchy::semantic(root)
                    .map_err(|_| DecodeError::Invalid("unbalanced hierarchy"))?;
                builder = builder.hierarchical_field(name, h, d);
            }
            _ => return Err(DecodeError::Invalid("field kind tag")),
        }
    }
    builder
        .build()
        .map_err(|_| DecodeError::Invalid("schema validation"))
}

/// A deployment bundle: everything needed to reconstruct an
/// [`ApksSystem`] plus its keys.
#[derive(Clone, Debug)]
pub struct SavedDeployment {
    /// Curve parameter label (`"standard-512"` or `"fast-192"`).
    pub curve_label: String,
    /// The index schema.
    pub schema: Arc<Schema>,
    /// The public key.
    pub pk: ApksPublicKey,
    /// The master key, if this bundle belongs to the TA.
    pub msk: Option<ApksMasterKey>,
    /// The APKS⁺ blinding secret, if this is a query-private deployment.
    pub blinding: Option<Fr>,
}

impl SavedDeployment {
    /// Serializes the bundle (current version, checksum trailer
    /// included).
    pub fn to_bytes(&self, params: &CurveParams) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u8(VERSION);
        self.encode_body(params, &mut w);
        let mut out = w.finish();
        let digest = apks_math::sha256::sha256(&out);
        out.extend_from_slice(&digest);
        out
    }

    /// Everything between the version byte and the checksum trailer
    /// (identical across format versions 1 and 2).
    fn encode_body(&self, params: &CurveParams, w: &mut Writer) {
        w.string(&self.curve_label);
        encode_schema(&self.schema, w);
        self.pk.hpe.encode(params, w);
        match &self.msk {
            Some(msk) => {
                w.u8(1);
                msk.hpe.encode(params, w);
            }
            None => {
                w.u8(0);
            }
        }
        match &self.blinding {
            Some(r) => {
                w.u8(1);
                w.bytes(&r.to_bytes());
            }
            None => {
                w.u8(0);
            }
        }
    }

    /// Deserializes a bundle and reconstructs the system.
    ///
    /// The curve parameters are resolved from the recorded label.
    ///
    /// # Errors
    ///
    /// [`ApksError::Corrupted`] when the bytes fail integrity checks —
    /// truncation inside the header, a missing trailer, or a checksum
    /// mismatch; [`ApksError::InvalidRecord`] when the bytes are intact
    /// but malformed (wrong magic, unknown version, structural decode
    /// failures in a version-1 bundle); [`ApksError::FormatBug`] when a
    /// version-2 bundle passes its checksum but the body fails
    /// structurally — the trailer proves the bytes are exactly what the
    /// writer produced, so the failure names the field that broke
    /// instead of blaming the caller's data.
    pub fn from_bytes(bytes: &[u8]) -> Result<(ApksSystem, SavedDeployment), ApksError> {
        // Header first: magic distinguishes "not our format" from "our
        // format, damaged" — a partial magic match on a short buffer is
        // truncation, a mismatch is a foreign file.
        if bytes.len() < MAGIC.len() + 1 {
            return Err(if bytes == &MAGIC[..bytes.len().min(MAGIC.len())] {
                ApksError::Corrupted("deployment truncated inside the header".into())
            } else {
                ApksError::InvalidRecord("deployment decode: magic".into())
            });
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(ApksError::InvalidRecord("deployment decode: magic".into()));
        }
        let header_len = MAGIC.len() + 1;
        let checksum_verified = bytes[MAGIC.len()] == VERSION;
        let body = match bytes[MAGIC.len()] {
            VERSION_UNCHECKED => &bytes[header_len..],
            VERSION => {
                // Integrity before structure: the whole payload is
                // verified before a single field is decoded.
                let payload_len = bytes
                    .len()
                    .checked_sub(CHECKSUM_LEN)
                    .filter(|&l| l >= header_len)
                    .ok_or_else(|| {
                        ApksError::Corrupted("deployment too short for its checksum trailer".into())
                    })?;
                let (payload, trailer) = bytes.split_at(payload_len);
                if apks_math::sha256::sha256(payload) != trailer {
                    return Err(ApksError::Corrupted(
                        "deployment checksum mismatch (truncated or bit-flipped)".into(),
                    ));
                }
                &payload[header_len..]
            }
            _ => {
                return Err(ApksError::InvalidRecord(
                    "deployment decode: version".into(),
                ))
            }
        };
        // each decode step is annotated with the bundle field it reads,
        // so a checksum-valid body that fails structurally can say
        // exactly which field broke
        struct FieldFail {
            field: &'static str,
            err: DecodeError,
        }
        fn at<T>(field: &'static str, r: Result<T, DecodeError>) -> Result<T, FieldFail> {
            r.map_err(|err| FieldFail { field, err })
        }
        let mut r = Reader::new(body);
        let mut parse = || -> Result<(ApksSystem, SavedDeployment), FieldFail> {
            let curve_label = at("curve_label", r.string())?;
            let params = match curve_label.as_str() {
                "standard-512" => CurveParams::standard(),
                "fast-192" => CurveParams::fast(),
                _ => {
                    return Err(FieldFail {
                        field: "curve_label",
                        err: DecodeError::Invalid("unknown curve label"),
                    })
                }
            };
            let schema = at("schema", decode_schema(&mut r))?;
            let system = ApksSystem::new(params.clone(), schema.clone());
            let hpe_pk = at("public_key", HpePublicKey::decode(&params, &mut r))?;
            if hpe_pk.n != schema.n() {
                return Err(FieldFail {
                    field: "public_key",
                    err: DecodeError::Invalid("public key dimension"),
                });
            }
            let pk = system.public_key_from_parts(hpe_pk);
            let msk = match at("master_key", r.u8())? {
                0 => None,
                1 => {
                    let hpe = at("master_key", HpeMasterKey::decode(&params, &mut r))?;
                    if hpe.b_star.dim() != schema.n() + 3 {
                        return Err(FieldFail {
                            field: "master_key",
                            err: DecodeError::Invalid("master key dimension"),
                        });
                    }
                    Some(ApksMasterKey { hpe })
                }
                _ => {
                    return Err(FieldFail {
                        field: "master_key",
                        err: DecodeError::Invalid("msk tag"),
                    })
                }
            };
            let blinding = match at("blinding", r.u8())? {
                0 => None,
                1 => {
                    let b: [u8; 32] = at(
                        "blinding",
                        r.bytes(32).map(|b| b.try_into().expect("32 bytes read")),
                    )?;
                    Some(Fr::from_bytes(&b).ok_or(FieldFail {
                        field: "blinding",
                        err: DecodeError::Invalid("blinding"),
                    })?)
                }
                _ => {
                    return Err(FieldFail {
                        field: "blinding",
                        err: DecodeError::Invalid("blinding tag"),
                    })
                }
            };
            at("body", r.finish())?;
            Ok((
                system,
                SavedDeployment {
                    curve_label,
                    schema,
                    pk,
                    msk,
                    blinding,
                },
            ))
        };
        parse().map_err(|f| {
            if checksum_verified {
                ApksError::FormatBug {
                    field: f.field,
                    detail: f.err.to_string(),
                }
            } else {
                // v1 bundles carry no integrity trailer: a structural
                // failure is indistinguishable from damaged caller data
                ApksError::InvalidRecord(format!("deployment decode: {}", f.err))
            }
        })
    }

    /// Builds a bundle from a plain deployment.
    pub fn new(
        system: &ApksSystem,
        pk: &ApksPublicKey,
        msk: Option<&ApksMasterKey>,
    ) -> SavedDeployment {
        SavedDeployment {
            curve_label: system.params().label().to_string(),
            schema: system.schema().clone(),
            pk: pk.clone(),
            msk: msk.cloned(),
            blinding: None,
        }
    }

    /// Builds a bundle from an APKS⁺ deployment (records the blinding so
    /// proxies can be re-provisioned).
    pub fn new_plus(
        system: &ApksSystem,
        pk: &ApksPublicKey,
        mk: &ApksPlusMasterKey,
    ) -> SavedDeployment {
        SavedDeployment {
            curve_label: system.params().label().to_string(),
            schema: system.schema().clone(),
            pk: pk.clone(),
            msk: Some(mk.inner.clone()),
            blinding: Some(mk.blinding),
        }
    }

    /// Reassembles the APKS⁺ master key, if this bundle holds one.
    pub fn plus_master_key(&self) -> Option<ApksPlusMasterKey> {
        match (&self.msk, &self.blinding) {
            (Some(msk), Some(blinding)) => Some(ApksPlusMasterKey {
                inner: msk.clone(),
                blinding: *blinding,
            }),
            _ => None,
        }
    }
}

/// Convenience: field accessors used by the CLI's schema printer.
pub fn describe_schema(schema: &Schema) -> Vec<String> {
    schema
        .fields()
        .iter()
        .map(|f: &Field| match &f.kind {
            FieldKind::Flat => format!("{} (flat, d={})", f.name, f.max_or_terms),
            FieldKind::Hierarchical(h) => format!(
                "{} (hierarchical, depth={}, d={})",
                f.name,
                h.depth(),
                f.max_or_terms
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyword::FieldValue;
    use crate::policy::QueryPolicy;
    use crate::query::Query;
    use crate::schema::Record;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_schema() -> Arc<Schema> {
        Schema::builder()
            .hierarchical_field("age", Hierarchy::numeric(0, 15, 4), 2)
            .flat_field("sex", 1)
            .build()
            .unwrap()
    }

    #[test]
    fn schema_roundtrip() {
        let schema = sample_schema();
        let mut w = Writer::new();
        encode_schema(&schema, &mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        let back = decode_schema(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(*back, *schema);
    }

    #[test]
    fn deployment_roundtrip_interoperates() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1600);
        let (pk, msk) = system.setup(&mut rng);

        // owner encrypts under the original deployment
        let rec = Record::new(vec![FieldValue::num(6), FieldValue::text("female")]);
        let idx = system.gen_index(&pk, &rec, &mut rng).unwrap();

        // save + load
        let saved = SavedDeployment::new(&system, &pk, Some(&msk));
        let bytes = saved.to_bytes(&params);
        let (system2, loaded) = SavedDeployment::from_bytes(&bytes).unwrap();
        let msk2 = loaded.msk.clone().unwrap();

        // the reloaded TA can authorize searches over the old index
        let q = Query::new().range("age", 4, 7).equals("sex", "female");
        let cap = system2
            .gen_cap(&loaded.pk, &msk2, &q, &QueryPolicy::default(), &mut rng)
            .unwrap();
        assert!(system2.search(&loaded.pk, &cap, &idx).unwrap());
    }

    #[test]
    fn plus_deployment_roundtrip() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1601);
        let (pk, mk) = system.setup_plus(&mut rng);
        let saved = SavedDeployment::new_plus(&system, &pk, &mk);
        let bytes = saved.to_bytes(&params);
        let (system2, loaded) = SavedDeployment::from_bytes(&bytes).unwrap();
        let mk2 = loaded.plus_master_key().unwrap();
        assert_eq!(mk2.blinding, mk.blinding);

        // full APKS⁺ flow with the reloaded keys
        let rec = Record::new(vec![FieldValue::num(3), FieldValue::text("male")]);
        let partial = system2
            .gen_partial_index(&loaded.pk, &rec, &mut rng)
            .unwrap();
        let share = apks_hpe::ProxyTransformKey {
            r_inv: mk2.blinding.inv().unwrap(),
        };
        let full = crate::scheme::proxy_transform(&system2, &share, &partial);
        let cap = system2
            .gen_cap(
                &loaded.pk,
                &mk2.inner,
                &Query::new().equals("sex", "male"),
                &QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        assert!(system2.search(&loaded.pk, &cap, &full).unwrap());
    }

    #[test]
    fn corrupted_bundles_rejected() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1602);
        let (pk, _) = system.setup(&mut rng);
        let bytes = SavedDeployment::new(&system, &pk, None).to_bytes(&params);

        // bad magic
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(SavedDeployment::from_bytes(&bad).is_err());
        // truncation
        assert!(SavedDeployment::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        // trailing garbage
        let mut long = bytes.clone();
        long.push(0);
        assert!(SavedDeployment::from_bytes(&long).is_err());
    }

    #[test]
    fn truncation_at_every_length_yields_structured_errors() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1603);
        let (pk, mk) = system.setup_plus(&mut rng);
        let bytes = SavedDeployment::new_plus(&system, &pk, &mk).to_bytes(&params);
        // every strict prefix must fail as *corruption*, never a panic
        // and never a misleading structural error: the header check
        // catches prefixes shorter than magic+version, and everything
        // longer fails the checksum before a single field is decoded.
        // Exhaustive over the header and schema region, strided through
        // the (large) key material.
        let stride = (bytes.len() / 512).max(1);
        let lens = (0..bytes.len().min(128)).chain((128..bytes.len()).step_by(stride));
        for len in lens {
            let err = SavedDeployment::from_bytes(&bytes[..len])
                .expect_err(&format!("prefix of length {len} decoded"));
            assert!(
                matches!(err, ApksError::Corrupted(_)),
                "len {len}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn corrupted_bytes_never_panic() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1604);
        let (pk, mk) = system.setup_plus(&mut rng);
        let bytes = SavedDeployment::new_plus(&system, &pk, &mk).to_bytes(&params);
        // deterministic fuzz: flip bytes across the bundle (stride keeps
        // the test fast; offsets cover header, schema, keys, blinding and
        // the trailer itself)
        let stride = (bytes.len() / 192).max(1);
        for pos in (0..bytes.len()).step_by(stride) {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut bad = bytes.clone();
                bad[pos] ^= flip;
                let err = SavedDeployment::from_bytes(&bad)
                    .expect_err(&format!("flip {flip:#x} at {pos} decoded"));
                if pos < 5 {
                    // header damage: a flipped magic byte reads as a
                    // foreign format, a flipped version as an unknown one
                    assert!(
                        matches!(err, ApksError::InvalidRecord(_)),
                        "pos {pos}: unexpected error {err:?}"
                    );
                } else {
                    // payload or trailer damage: the checksum catches it
                    // before any field is decoded
                    assert!(
                        matches!(err, ApksError::Corrupted(_)),
                        "pos {pos}: unexpected error {err:?}"
                    );
                }
            }
        }
        // length-prefix corruption: blow up an interior u32 length field
        // (the curve-label prefix right after the header) to an absurd
        // value — caught by the checksum, reported as corruption
        let mut bad = bytes.clone();
        bad[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            SavedDeployment::from_bytes(&bad),
            Err(ApksError::Corrupted(_))
        ));
    }

    #[test]
    fn version1_bundles_without_trailer_still_load() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1606);
        let (pk, mk) = system.setup_plus(&mut rng);
        let saved = SavedDeployment::new_plus(&system, &pk, &mk);
        // a version-1 bundle: same body, version byte 1, no trailer
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u8(VERSION_UNCHECKED);
        saved.encode_body(&params, &mut w);
        let v1_bytes = w.finish();
        let (_, loaded) = SavedDeployment::from_bytes(&v1_bytes).unwrap();
        assert_eq!(loaded.curve_label, saved.curve_label);
        assert_eq!(loaded.plus_master_key().unwrap().blinding, mk.blinding);
        // saving again upgrades to the checksummed format
        let upgraded = loaded.to_bytes(&params);
        assert_eq!(upgraded, saved.to_bytes(&params));
        assert_eq!(upgraded.len(), v1_bytes.len() + CHECKSUM_LEN);
        // v1 structural errors still surface as InvalidRecord: truncating
        // a v1 body hits the legacy decode path, not the checksum
        let err = SavedDeployment::from_bytes(&v1_bytes[..v1_bytes.len() / 2]).unwrap_err();
        assert!(matches!(err, ApksError::InvalidRecord(_)), "{err:?}");
        // an unknown future version is malformed, not corrupt
        let mut future = v1_bytes.clone();
        future[4] = 9;
        assert!(matches!(
            SavedDeployment::from_bytes(&future),
            Err(ApksError::InvalidRecord(_))
        ));
    }

    #[test]
    fn hostile_child_count_rejected_before_allocation() {
        // a hierarchy node declaring u32::MAX children with no child
        // bytes present must be refused by the remaining-bytes bound,
        // not pre-allocated for (1 << 20 children would pass the old
        // cap but still be a ~24 MB allocation per recursion level)
        let mut w = Writer::new();
        w.u32(1); // one field
        w.string("f");
        w.u32(1); // d
        w.u8(1); // hierarchical
        w.string("root");
        w.u8(0); // no interval
        w.u32(u32::MAX); // hostile child count, zero child bytes follow
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(decode_schema(&mut r), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn checksum_valid_broken_body_names_the_failing_field() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1607);
        let (pk, mk) = system.setup_plus(&mut rng);
        let saved = SavedDeployment::new_plus(&system, &pk, &mk);

        // a v2 bundle whose body is structurally broken but whose
        // checksum is *recomputed* over the broken payload: integrity
        // passes, so the decode failure is a format bug, not bad data
        let reseal = |payload: Vec<u8>| -> Vec<u8> {
            let digest = apks_math::sha256::sha256(&payload);
            let mut out = payload;
            out.extend_from_slice(&digest);
            out
        };

        // unknown curve label → field `curve_label`
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u8(VERSION);
        w.string("no-such-curve");
        let err = SavedDeployment::from_bytes(&reseal(w.finish())).unwrap_err();
        match &err {
            ApksError::FormatBug { field, detail } => {
                assert_eq!(*field, "curve_label");
                assert!(detail.contains("unknown curve label"), "{detail}");
            }
            other => panic!("expected FormatBug, got {other:?}"),
        }
        assert!(err.to_string().contains("curve_label"));

        // body truncated inside the schema → field `schema`
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u8(VERSION);
        w.string("fast-192");
        w.u32(3); // declares three fields, none present
        let err = SavedDeployment::from_bytes(&reseal(w.finish())).unwrap_err();
        assert!(
            matches!(&err, ApksError::FormatBug { field, .. } if *field == "schema"),
            "{err:?}"
        );

        // trailing bytes after a complete body → field `body`
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u8(VERSION);
        saved.encode_body(&params, &mut w);
        w.u8(0); // one stray byte
        let err = SavedDeployment::from_bytes(&reseal(w.finish())).unwrap_err();
        assert!(
            matches!(&err, ApksError::FormatBug { field, .. } if *field == "body"),
            "{err:?}"
        );

        // the same structural breakage in a v1 body stays InvalidRecord
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u8(VERSION_UNCHECKED);
        w.string("no-such-curve");
        let err = SavedDeployment::from_bytes(&w.finish()).unwrap_err();
        assert!(matches!(&err, ApksError::InvalidRecord(_)), "{err:?}");
    }

    #[test]
    fn roundtrip_is_stable_under_reencoding() {
        let params = CurveParams::fast();
        let system = ApksSystem::new(params.clone(), sample_schema());
        let mut rng = StdRng::seed_from_u64(1605);
        let (pk, mk) = system.setup_plus(&mut rng);
        let bytes = SavedDeployment::new_plus(&system, &pk, &mk).to_bytes(&params);
        let (_, loaded) = SavedDeployment::from_bytes(&bytes).unwrap();
        // decode∘encode is the identity on canonical bytes
        assert_eq!(loaded.to_bytes(&params), bytes);
    }

    #[test]
    fn describe_schema_lists_fields() {
        let lines = describe_schema(&sample_schema());
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("hierarchical"));
        assert!(lines[1].contains("flat"));
    }
}
