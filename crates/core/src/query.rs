//! Multi-dimensional keyword queries and their conversion to CNF over the
//! expanded index (§II-D and Fig. 4(b) of the paper).
//!
//! A [`Query`] is a conjunction of per-field terms: equality, subset
//! (`field ∈ {…}`), and numeric range. Conversion resolves every term to
//! one *expanded dimension* (a hierarchy level) and at most `d` keywords
//! ORed within it — the exact query class the paper's vector encoding
//! supports.

use crate::error::ApksError;
use crate::hierarchy::Hierarchy;
use crate::keyword::{keyword, FieldValue};
use crate::schema::{FieldKind, Record, Schema};
use apks_math::Fr;
use core::fmt;

/// One conjunct of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Condition {
    /// `field = value`. On a hierarchical field the value may name any
    /// node — a leaf, a simple range like `"31-60"`, or a semantic range
    /// like `"East MA"`.
    Equals {
        /// Field name.
        field: String,
        /// The value or node label.
        value: FieldValue,
    },
    /// `field ∈ values` (the paper's subset query). On hierarchical
    /// fields all values must resolve to nodes of the same level.
    OneOf {
        /// Field name.
        field: String,
        /// The allowed values (≤ the field's OR budget).
        values: Vec<FieldValue>,
    },
    /// `lo ≤ field ≤ hi` on a numeric field.
    Range {
        /// Field name.
        field: String,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
}

impl Condition {
    /// The field this condition constrains.
    pub fn field(&self) -> &str {
        match self {
            Condition::Equals { field, .. }
            | Condition::OneOf { field, .. }
            | Condition::Range { field, .. } => field,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Equals { field, value } => write!(f, "{field} = {value}"),
            Condition::OneOf { field, values } => {
                write!(f, "{field} in {{")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Condition::Range { field, lo, hi } => write!(f, "{lo} <= {field} <= {hi}"),
        }
    }
}

/// A conjunctive multi-dimensional query.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Query {
    /// The conjuncts; fields not mentioned are "don't care".
    pub conditions: Vec<Condition>,
}

impl Query {
    /// The empty query (matches everything — rejected by capability
    /// policies, but useful as a builder seed).
    pub fn new() -> Query {
        Query::default()
    }

    /// Adds an equality conjunct.
    pub fn equals(mut self, field: impl Into<String>, value: impl Into<FieldValue>) -> Query {
        self.conditions.push(Condition::Equals {
            field: field.into(),
            value: value.into(),
        });
        self
    }

    /// Adds a subset conjunct.
    pub fn one_of(
        mut self,
        field: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<FieldValue>>,
    ) -> Query {
        self.conditions.push(Condition::OneOf {
            field: field.into(),
            values: values.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Adds a range conjunct.
    pub fn range(mut self, field: impl Into<String>, lo: i64, hi: i64) -> Query {
        self.conditions.push(Condition::Range {
            field: field.into(),
            lo,
            hi,
        });
        self
    }

    /// Parses the textual query language (see [`crate::parser`]).
    ///
    /// # Errors
    ///
    /// Returns [`ApksError::Parse`] on malformed input.
    pub fn parse(text: &str) -> Result<Query, ApksError> {
        crate::parser::parse_query(text)
    }

    /// Number of distinct fields constrained.
    pub fn constrained_fields(&self) -> usize {
        let mut fields: Vec<&str> = self.conditions.iter().map(|c| c.field()).collect();
        fields.sort_unstable();
        fields.dedup();
        fields.len()
    }

    /// Converts the query against a schema into per-dimension keyword
    /// disjunctions (the CNF `Q̂` of Fig. 4(b)).
    ///
    /// # Errors
    ///
    /// Fails if a field is unknown, a term exceeds the OR budget, values
    /// resolve to different hierarchy levels, or a range has no exact
    /// same-level cover.
    pub fn convert(&self, schema: &Schema) -> Result<ConvertedQuery, ApksError> {
        let mut terms: Vec<DimTerm> = Vec::new();
        for cond in &self.conditions {
            let field_idx = schema.field_index(cond.field())?;
            let field = &schema.fields()[field_idx];
            let d = field.max_or_terms;
            let (level, labels): (usize, Vec<String>) = match (&field.kind, cond) {
                (FieldKind::Flat, Condition::Equals { value, .. }) => (0, vec![value.label()]),
                (FieldKind::Flat, Condition::OneOf { values, .. }) => {
                    (0, values.iter().map(FieldValue::label).collect())
                }
                (FieldKind::Flat, Condition::Range { lo, hi, .. }) => {
                    if lo > hi {
                        return Err(ApksError::UnsupportedQuery(format!(
                            "empty range on {:?}",
                            field.name
                        )));
                    }
                    (0, (*lo..=*hi).map(|v| v.to_string()).collect())
                }
                (FieldKind::Hierarchical(h), Condition::Equals { value, .. }) => {
                    let (level, node) = locate_value(h, value, &field.name)?;
                    (level, vec![node])
                }
                (FieldKind::Hierarchical(h), Condition::OneOf { values, .. }) => {
                    if values.is_empty() {
                        return Err(ApksError::UnsupportedQuery(format!(
                            "empty subset on {:?}",
                            field.name
                        )));
                    }
                    let mut level = None;
                    let mut labels = Vec::with_capacity(values.len());
                    for v in values {
                        let (l, node) = locate_value(h, v, &field.name)?;
                        match level {
                            None => level = Some(l),
                            Some(prev) if prev != l => {
                                return Err(ApksError::UnsupportedQuery(format!(
                                    "subset on {:?} mixes hierarchy levels {prev} and {l}",
                                    field.name
                                )));
                            }
                            _ => {}
                        }
                        labels.push(node);
                    }
                    (level.unwrap(), labels)
                }
                (FieldKind::Hierarchical(h), Condition::Range { lo, hi, .. }) => {
                    let (level, nodes) = h.cover_range(*lo, *hi, d)?;
                    (level, nodes.into_iter().map(|n| n.label.clone()).collect())
                }
            };
            if labels.len() > d {
                return Err(ApksError::UnsupportedQuery(format!(
                    "{} OR terms on {:?} exceed the budget d = {d}",
                    labels.len(),
                    field.name
                )));
            }
            let dim = schema.dims_of_field(field_idx).start + level;
            if terms.iter().any(|t| t.dim == dim) {
                return Err(ApksError::UnsupportedQuery(format!(
                    "two conditions target sub-field level {level} of {:?}",
                    field.name
                )));
            }
            let keywords = labels
                .iter()
                .map(|label| keyword(&field.name, level, label))
                .collect();
            terms.push(DimTerm { dim, keywords });
        }
        terms.sort_by_key(|t| t.dim);
        Ok(ConvertedQuery { terms })
    }

    /// Ground-truth evaluation against a plaintext record, mirroring the
    /// converted (level-based) semantics — the oracle used by tests.
    ///
    /// # Errors
    ///
    /// Fails if the record or query do not fit the schema.
    pub fn matches_record(&self, schema: &Schema, record: &Record) -> Result<bool, ApksError> {
        let converted = self.convert(schema)?;
        let record_kws = schema.convert_record(record)?;
        Ok(converted
            .terms
            .iter()
            .all(|t| t.keywords.contains(&record_kws[t.dim])))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conditions.is_empty() {
            return write!(f, "TRUE");
        }
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

/// Resolves a query value to a hierarchy node: `(level, label)`.
fn locate_value(
    h: &Hierarchy,
    value: &FieldValue,
    field: &str,
) -> Result<(usize, String), ApksError> {
    let label = value.label();
    h.locate(&label)
        .map(|(l, node)| (l, node.label.clone()))
        .ok_or_else(|| {
            ApksError::ValueNotInHierarchy(format!("{label:?} not in hierarchy of {field:?}"))
        })
}

/// One converted per-dimension disjunction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimTerm {
    /// Expanded-dimension index.
    pub dim: usize,
    /// Keywords ORed within the dimension (1 ≤ len ≤ d).
    pub keywords: Vec<Fr>,
}

/// A fully converted query: CNF with one disjunction per constrained
/// dimension; unmentioned dimensions are don't-care.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvertedQuery {
    /// The per-dimension terms, sorted by dimension.
    pub terms: Vec<DimTerm>,
}

impl ConvertedQuery {
    /// Number of constrained dimensions.
    pub fn dimensions(&self) -> usize {
        self.terms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::builder()
            .hierarchical_field("age", Hierarchy::numeric(0, 15, 4), 2)
            .flat_field("sex", 1)
            .flat_field("illness", 3)
            .build()
            .unwrap()
    }

    #[test]
    fn equality_conversion() {
        let s = schema();
        let q = Query::new().equals("sex", "male");
        let c = q.convert(&s).unwrap();
        assert_eq!(c.dimensions(), 1);
        assert_eq!(c.terms[0].dim, 3);
        assert_eq!(c.terms[0].keywords, vec![keyword("sex", 0, "male")]);
    }

    #[test]
    fn hierarchical_equality_at_internal_node() {
        let s = schema();
        let q = Query::new().equals("age", "4-7");
        let c = q.convert(&s).unwrap();
        assert_eq!(c.terms[0].dim, 1); // level 1 of age
        assert_eq!(c.terms[0].keywords, vec![keyword("age", 1, "4-7")]);
    }

    #[test]
    fn range_conversion_uses_cover() {
        let s = schema();
        let q = Query::new().range("age", 4, 11);
        let c = q.convert(&s).unwrap();
        assert_eq!(c.terms[0].dim, 1);
        assert_eq!(
            c.terms[0].keywords,
            vec![keyword("age", 1, "4-7"), keyword("age", 1, "8-11")]
        );
    }

    #[test]
    fn subset_level_mixing_rejected() {
        let s = schema();
        let q = Query::new().one_of("age", [FieldValue::text("4-7"), FieldValue::num(3)]);
        assert!(matches!(q.convert(&s), Err(ApksError::UnsupportedQuery(_))));
    }

    #[test]
    fn or_budget_enforced() {
        let s = schema();
        // illness budget is 3
        let q = Query::new().one_of("illness", ["a", "b", "c", "d"]);
        assert!(matches!(q.convert(&s), Err(ApksError::UnsupportedQuery(_))));
        let q = Query::new().one_of("illness", ["a", "b", "c"]);
        assert!(q.convert(&s).is_ok());
    }

    #[test]
    fn flat_numeric_range_enumerates() {
        let s = Schema::builder().flat_field("count", 4).build().unwrap();
        let q = Query::new().range("count", 2, 5);
        let c = q.convert(&s).unwrap();
        assert_eq!(c.terms[0].keywords.len(), 4);
        let q = Query::new().range("count", 0, 9);
        assert!(q.convert(&s).is_err()); // 10 > budget 4
    }

    #[test]
    fn duplicate_dim_rejected_but_distinct_levels_ok() {
        let s = schema();
        let dup = Query::new().equals("sex", "male").equals("sex", "female");
        assert!(dup.convert(&s).is_err());
        // same field, different hierarchy levels → different dims → OK
        let two_levels = Query::new().equals("age", "4-7").equals("age", 5);
        let c = two_levels.convert(&s).unwrap();
        assert_eq!(c.dimensions(), 2);
    }

    #[test]
    fn unknown_field_rejected() {
        let s = schema();
        let q = Query::new().equals("zodiac", "leo");
        assert!(matches!(q.convert(&s), Err(ApksError::UnknownField(_))));
    }

    #[test]
    fn matches_record_oracle() {
        let s = schema();
        let alice = Record::new(vec![
            FieldValue::num(6),
            FieldValue::text("female"),
            FieldValue::text("flu"),
        ]);
        let hit = Query::new().range("age", 4, 7).equals("sex", "female");
        let miss = Query::new().range("age", 8, 11).equals("sex", "female");
        assert!(hit.matches_record(&s, &alice).unwrap());
        assert!(!miss.matches_record(&s, &alice).unwrap());
    }

    #[test]
    fn display_forms() {
        let q = Query::new()
            .range("age", 30, 60)
            .equals("sex", "male")
            .one_of("region", ["Boston", "Worcester"]);
        let text = q.to_string();
        assert!(text.contains("30 <= age <= 60"));
        assert!(text.contains("AND"));
        assert_eq!(Query::new().to_string(), "TRUE");
    }
}
