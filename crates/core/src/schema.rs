//! Index schemas and records.
//!
//! A [`Schema`] declares the index fields, which of them carry an attribute
//! hierarchy, and the per-dimension OR budget `d`. It also owns the
//! *expansion* of Fig. 4(a): each hierarchical field of depth `k` becomes
//! `k` sub-fields (one per level), so an original `m`-field index becomes
//! an `m'`-dimension converted index, and the HPE vector length is
//! `n = Σ dᵢ + 1` over the expanded dimensions.

use crate::error::ApksError;
use crate::hierarchy::Hierarchy;
use crate::keyword::{keyword, FieldValue};
use apks_math::Fr;
use std::collections::HashMap;
use std::sync::Arc;

/// The kind of one original field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldKind {
    /// A flat field: one dimension, equality/subset terms only.
    Flat,
    /// A hierarchical field: expands into `hierarchy.depth()` sub-fields.
    Hierarchical(Hierarchy),
}

/// One original index field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field name ("age", "illness", …).
    pub name: String,
    /// Flat or hierarchical.
    pub kind: FieldKind,
    /// Maximum number of OR terms (`d`) per sub-field of this field.
    pub max_or_terms: usize,
}

/// One dimension of the *converted* index (a sub-field).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpandedDim {
    /// Index of the original field.
    pub field: usize,
    /// Hierarchy level this dimension carries (0 for flat fields).
    pub level: usize,
    /// Per-dimension polynomial degree (the field's `d`).
    pub degree: usize,
}

/// An index schema shared by owners, authorities and the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
    expanded: Vec<ExpandedDim>,
    /// First expanded-dimension index per field.
    field_dim_start: Vec<usize>,
    n: usize,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder { fields: Vec::new() }
    }

    /// The original fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Looks a field up by name.
    pub fn field_index(&self, name: &str) -> Result<usize, ApksError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ApksError::UnknownField(name.to_string()))
    }

    /// The expanded (converted) dimensions, in vector order.
    pub fn expanded(&self) -> &[ExpandedDim] {
        &self.expanded
    }

    /// Number of expanded dimensions `m'`.
    pub fn m_prime(&self) -> usize {
        self.expanded.len()
    }

    /// The HPE predicate-vector length `n = Σ dᵢ + 1`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The expanded-dimension range belonging to original field `f`.
    pub fn dims_of_field(&self, f: usize) -> std::ops::Range<usize> {
        let start = self.field_dim_start[f];
        let end = start
            + match &self.fields[f].kind {
                FieldKind::Flat => 1,
                FieldKind::Hierarchical(h) => h.depth(),
            };
        start..end
    }

    /// Converts a record into per-dimension keywords (Fig. 4(a)).
    ///
    /// # Errors
    ///
    /// Fails if the record arity mismatches or a value is not in its
    /// field's hierarchy.
    pub fn convert_record(&self, record: &Record) -> Result<Vec<Fr>, ApksError> {
        if record.values.len() != self.fields.len() {
            return Err(ApksError::InvalidRecord(format!(
                "expected {} values, got {}",
                self.fields.len(),
                record.values.len()
            )));
        }
        let mut out = Vec::with_capacity(self.m_prime());
        for (field, value) in self.fields.iter().zip(&record.values) {
            match &field.kind {
                FieldKind::Flat => {
                    out.push(keyword(&field.name, 0, &value.label()));
                }
                FieldKind::Hierarchical(h) => {
                    let path = match value {
                        FieldValue::Num(v) => h.path_for_num(*v)?,
                        FieldValue::Text(s) => h.path_for_label(s)?,
                    };
                    debug_assert_eq!(path.len(), h.depth());
                    for (level, node) in path.iter().enumerate() {
                        out.push(keyword(&field.name, level, &node.label));
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Builder for [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    fields: Vec<Field>,
}

impl SchemaBuilder {
    /// Adds a flat field with OR budget `d`.
    pub fn flat_field(mut self, name: impl Into<String>, d: usize) -> Self {
        self.fields.push(Field {
            name: name.into(),
            kind: FieldKind::Flat,
            max_or_terms: d,
        });
        self
    }

    /// Adds a hierarchical field with per-sub-field OR budget `d`.
    pub fn hierarchical_field(
        mut self,
        name: impl Into<String>,
        hierarchy: Hierarchy,
        d: usize,
    ) -> Self {
        self.fields.push(Field {
            name: name.into(),
            kind: FieldKind::Hierarchical(hierarchy),
            max_or_terms: d,
        });
        self
    }

    /// Finishes the schema.
    ///
    /// # Errors
    ///
    /// Fails on duplicate/empty names, zero OR budgets, or no fields.
    pub fn build(self) -> Result<Arc<Schema>, ApksError> {
        if self.fields.is_empty() {
            return Err(ApksError::InvalidSchema("schema has no fields".into()));
        }
        let mut by_name = HashMap::new();
        for (i, f) in self.fields.iter().enumerate() {
            if f.name.is_empty() {
                return Err(ApksError::InvalidSchema("empty field name".into()));
            }
            if f.max_or_terms == 0 {
                return Err(ApksError::InvalidSchema(format!(
                    "field {:?} has zero OR budget",
                    f.name
                )));
            }
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(ApksError::InvalidSchema(format!(
                    "duplicate field name {:?}",
                    f.name
                )));
            }
        }
        let mut expanded = Vec::new();
        let mut field_dim_start = Vec::with_capacity(self.fields.len());
        for (i, f) in self.fields.iter().enumerate() {
            field_dim_start.push(expanded.len());
            match &f.kind {
                FieldKind::Flat => expanded.push(ExpandedDim {
                    field: i,
                    level: 0,
                    degree: f.max_or_terms,
                }),
                FieldKind::Hierarchical(h) => {
                    for level in 0..h.depth() {
                        expanded.push(ExpandedDim {
                            field: i,
                            level,
                            degree: f.max_or_terms,
                        });
                    }
                }
            }
        }
        // Every expanded dimension must carry degree ≥ 1: the ψ encoder
        // emits at least z¹ per dimension, and a zero-degree block would
        // misalign x⃗ against φ. The per-field OR-budget check above
        // already guarantees this; keep the invariant explicit so any
        // future expansion path that derives degrees differently fails
        // here instead of inside the encoder.
        if let Some(dim) = expanded.iter().find(|d| d.degree == 0) {
            return Err(ApksError::InvalidSchema(format!(
                "field {:?} expands to a zero-degree dimension",
                self.fields[dim.field].name
            )));
        }
        let n = expanded.iter().map(|d| d.degree).sum::<usize>() + 1;
        Ok(Arc::new(Schema {
            fields: self.fields,
            by_name,
            expanded,
            field_dim_start,
            n,
        }))
    }
}

/// A plaintext record: one value per schema field, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// The field values.
    pub values: Vec<FieldValue>,
}

impl Record {
    /// Builds a record.
    pub fn new(values: Vec<FieldValue>) -> Record {
        Record { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phr_schema() -> Arc<Schema> {
        Schema::builder()
            .hierarchical_field("age", Hierarchy::numeric(0, 15, 4), 2)
            .flat_field("sex", 1)
            .flat_field("illness", 3)
            .build()
            .unwrap()
    }

    #[test]
    fn expansion_shape() {
        let s = phr_schema();
        // age depth 3 → 3 dims of degree 2; sex → 1 dim degree 1; illness → 1 dim degree 3
        assert_eq!(s.m_prime(), 5);
        assert_eq!(s.n(), 3 * 2 + 1 + 3 + 1);
        assert_eq!(s.dims_of_field(0), 0..3);
        assert_eq!(s.dims_of_field(1), 3..4);
        assert_eq!(s.dims_of_field(2), 4..5);
    }

    #[test]
    fn record_conversion() {
        let s = phr_schema();
        let r = Record::new(vec![
            FieldValue::num(6),
            FieldValue::text("female"),
            FieldValue::text("flu"),
        ]);
        let kws = s.convert_record(&r).unwrap();
        assert_eq!(kws.len(), 5);
        // first three are the path labels 0-15, 4-7, 6 under field "age"
        assert_eq!(kws[0], keyword("age", 0, "0-15"));
        assert_eq!(kws[1], keyword("age", 1, "4-7"));
        assert_eq!(kws[2], keyword("age", 2, "6"));
        assert_eq!(kws[3], keyword("sex", 0, "female"));
        assert_eq!(kws[4], keyword("illness", 0, "flu"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = phr_schema();
        let r = Record::new(vec![FieldValue::num(6)]);
        assert!(matches!(
            s.convert_record(&r),
            Err(ApksError::InvalidRecord(_))
        ));
    }

    #[test]
    fn out_of_hierarchy_value_rejected() {
        let s = phr_schema();
        let r = Record::new(vec![
            FieldValue::num(99),
            FieldValue::text("female"),
            FieldValue::text("flu"),
        ]);
        assert!(matches!(
            s.convert_record(&r),
            Err(ApksError::ValueNotInHierarchy(_))
        ));
    }

    #[test]
    fn builder_validation() {
        assert!(Schema::builder().build().is_err());
        assert!(Schema::builder().flat_field("a", 0).build().is_err());
        assert!(Schema::builder()
            .flat_field("a", 1)
            .flat_field("a", 1)
            .build()
            .is_err());
    }

    #[test]
    fn zero_degree_dimensions_are_rejected_for_every_field_kind() {
        // a zero OR budget would expand to a degree-0 dimension, which
        // would misalign ψ against φ — both field kinds must refuse it
        // at construction, not at encoding time
        assert!(matches!(
            Schema::builder().flat_field("kw", 0).build(),
            Err(ApksError::InvalidSchema(_))
        ));
        assert!(matches!(
            Schema::builder()
                .hierarchical_field("age", Hierarchy::numeric(0, 15, 4), 0)
                .build(),
            Err(ApksError::InvalidSchema(_))
        ));
        // mixed with a valid field the invalid one still dominates
        assert!(Schema::builder()
            .flat_field("ok", 2)
            .flat_field("bad", 0)
            .build()
            .is_err());
    }
}
