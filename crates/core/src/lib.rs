//! **APKS** — Authorized Private Keyword Search over encrypted data.
//!
//! This crate is the paper's primary contribution: a searchable-encryption
//! layer in which
//!
//! * data owners publish *encrypted multi-dimensional keyword indexes*
//!   ([`ApksSystem::gen_index`]),
//! * authorities issue *search capabilities* for multi-dimensional queries
//!   with equality, subset and simple-range terms
//!   ([`ApksSystem::gen_cap`]),
//! * capabilities can be *delegated* — each delegation strictly restricts
//!   the query ([`ApksSystem::delegate_cap`]),
//! * the server evaluates a capability against an index learning only the
//!   boolean outcome ([`ApksSystem::search`]).
//!
//! Range queries are made efficient with **attribute hierarchies**
//! ([`Hierarchy`]): each hierarchical field is expanded into one sub-field
//! per tree level, and a range query selects up to `d` *simple ranges*
//! (nodes) from a single level — §IV-C of the paper.
//!
//! Revocation is expressed with a time attribute ([`revocation`]), and the
//! statistical-attack countermeasure of §VI with a [`QueryPolicy`].
//!
//! The `plus` API variants implement **APKS⁺** (partial encryption +
//! proxy transformation) for query privacy.
//!
//! # Example
//!
//! ```
//! use apks_core::{ApksSystem, FieldValue, Hierarchy, Query, Record, Schema};
//! use apks_curve::CurveParams;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let schema = Schema::builder()
//!     .hierarchical_field("age", Hierarchy::numeric(0, 63, 4), 2)
//!     .flat_field("sex", 1)
//!     .build()?;
//! let system = ApksSystem::new(CurveParams::fast(), schema);
//! let mut rng = StdRng::seed_from_u64(7);
//! let (pk, msk) = system.setup(&mut rng);
//!
//! let alice = Record::new(vec![FieldValue::num(25), FieldValue::text("female")]);
//! let index = system.gen_index(&pk, &alice, &mut rng)?;
//!
//! let query = Query::parse("age in [16, 31] and sex = \"female\"")?;
//! let policy = apks_core::QueryPolicy::default();
//! let cap = system.gen_cap(&pk, &msk, &query, &policy, &mut rng)?;
//! assert!(system.search(&pk, &cap, &index)?);
//! # Ok(())
//! # }
//! ```

pub mod encoding;
pub mod error;
pub mod fault;
pub mod hierarchy;
pub mod keyword;
pub mod overload;
pub mod parser;
pub mod persist;
pub mod policy;
pub mod query;
pub mod revocation;
pub mod schema;
pub mod scheme;

pub use error::ApksError;
pub use fault::{
    DocFault, FaultConfig, FaultContext, FaultPlan, ProxyFault, RetryPolicy, VirtualClock,
};
pub use hierarchy::Hierarchy;
pub use keyword::FieldValue;
pub use overload::{Budget, Deadline};
pub use persist::SavedDeployment;
pub use policy::QueryPolicy;
pub use query::{Condition, Query};
pub use schema::{Record, Schema, SchemaBuilder};
pub use scheme::{
    proxy_transform, ApksMasterKey, ApksPlusMasterKey, ApksPublicKey, ApksSystem, Capability,
    EncryptedIndex, PreparedCapability,
};
