//! The vector encodings `ψ` (index → plaintext vector) and `φ`
//! (query → predicate vector) of §IV-C.1.
//!
//! The multi-dimensional query polynomial is
//!
//! ```text
//! p(Z₁,…,Z_{m'}) = Σᵢ rᵢ · (Zᵢ − w_{i,1})⋯(Zᵢ − w_{i,dᵢ})
//! ```
//!
//! with fresh `rᵢ ∈ F_q` per constrained dimension and `rᵢ = 0` for
//! "don't care" dimensions. Writing each univariate factor in coefficient
//! form gives the predicate vector
//! `v⃗ = (c_{1,d₁}, …, c_{1,1}, …, c_{m',d_{m'}}, …, c_{m',1}, c₀)` and the
//! plaintext vector
//! `x⃗ = ψ(Z⃗) = (z₁^{d₁}, …, z₁, …, z_{m'}^{d_{m'}}, …, z_{m'}, 1)`, so
//! `x⃗ · v⃗ = p(z₁,…,z_{m'})`, which is zero iff every constrained
//! dimension's keyword is among the queried ones (up to the negligible
//! chance of a random root).

use crate::query::ConvertedQuery;
use crate::schema::Schema;
use apks_math::Fr;
use rand::Rng;

/// `ψ`: lifts per-dimension keywords into the plaintext vector
/// `x⃗ = (z₁^{d₁}, …, z₁, …, 1)` of length `schema.n()`.
///
/// # Panics
///
/// Panics if `keywords.len()` differs from the schema's dimension count
/// (an internal invariant — records are converted by the same schema).
pub fn psi(schema: &Schema, keywords: &[Fr]) -> Vec<Fr> {
    assert_eq!(
        keywords.len(),
        schema.m_prime(),
        "keyword count must equal the expanded dimension count"
    );
    let mut x = Vec::with_capacity(schema.n());
    for (dim, &z) in schema.expanded().iter().zip(keywords) {
        // The loop below emits z¹ unconditionally, so a zero-degree
        // dimension would silently shift every later block against φ's
        // coefficient layout. SchemaBuilder::build rejects degree 0;
        // re-check the invariant here rather than corrupting x⃗.
        assert!(
            dim.degree >= 1,
            "schema invariant violated: expanded dimension has degree 0"
        );
        // z^d, z^{d-1}, …, z
        let mut powers = Vec::with_capacity(dim.degree);
        let mut acc = z;
        powers.push(acc); // z^1
        for _ in 1..dim.degree {
            acc *= z;
            powers.push(acc);
        }
        powers.reverse();
        x.extend(powers);
    }
    x.push(Fr::one());
    debug_assert_eq!(x.len(), schema.n());
    x
}

/// `φ`: encodes a converted query into the predicate vector of length
/// `schema.n()`, drawing fresh blinding scalars `rᵢ` from `rng`.
///
/// Dimensions absent from the query get zero coefficients (the "don't
/// care" case whose cheaper capability generation Fig. 8(c) measures).
pub fn phi<R: Rng + ?Sized>(schema: &Schema, query: &ConvertedQuery, rng: &mut R) -> Vec<Fr> {
    let mut v = vec![Fr::ZERO; schema.n()];
    let mut c0 = Fr::ZERO;
    let mut offset = 0usize;
    let mut term_iter = query.terms.iter().peekable();
    for (i, dim) in schema.expanded().iter().enumerate() {
        if let Some(term) = term_iter.peek() {
            if term.dim == i {
                let term = term_iter.next().unwrap();
                debug_assert!(!term.keywords.is_empty() && term.keywords.len() <= dim.degree);
                let r = Fr::random_nonzero(rng);
                let coeffs = poly_from_roots(&term.keywords);
                // coeffs[t] is the coefficient of Z^t, t = 0..=deg
                for (t, &c) in coeffs.iter().enumerate().skip(1) {
                    // position of z^t within this dimension's block:
                    // block layout is z^d … z^1 at offsets 0 … d−1
                    v[offset + dim.degree - t] = r * c;
                }
                c0 += r * coeffs[0];
            }
        }
        offset += dim.degree;
    }
    v[schema.n() - 1] = c0;
    v
}

/// Expands `Π (Z − wⱼ)` into coefficients `[c₀, c₁, …, c_m]`
/// (index = power of `Z`).
pub fn poly_from_roots(roots: &[Fr]) -> Vec<Fr> {
    let mut coeffs = vec![Fr::one()]; // the constant polynomial 1
    for &w in roots {
        // multiply by (Z - w)
        let mut next = vec![Fr::ZERO; coeffs.len() + 1];
        for (t, &c) in coeffs.iter().enumerate() {
            next[t + 1] += c; // c·Z^{t+1}
            next[t] -= c * w; // −w·c·Z^t
        }
        coeffs = next;
    }
    coeffs
}

/// Evaluates `x⃗ · v⃗` — used by tests and the plaintext oracle.
pub fn inner_product(x: &[Fr], v: &[Fr]) -> Fr {
    debug_assert_eq!(x.len(), v.len());
    x.iter().zip(v).map(|(&a, &b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Hierarchy;
    use crate::keyword::FieldValue;
    use crate::query::Query;
    use crate::schema::{Record, Schema};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .hierarchical_field("age", Hierarchy::numeric(0, 15, 4), 2)
            .flat_field("sex", 1)
            .flat_field("illness", 3)
            .build()
            .unwrap()
    }

    fn record(age: i64, sex: &str, illness: &str) -> Record {
        Record::new(vec![
            FieldValue::num(age),
            FieldValue::text(sex),
            FieldValue::text(illness),
        ])
    }

    #[test]
    fn poly_from_roots_small() {
        let r = vec![Fr::from_u64(2), Fr::from_u64(3)];
        // (Z-2)(Z-3) = Z² − 5Z + 6
        let c = poly_from_roots(&r);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], Fr::from_u64(6));
        assert_eq!(c[1], Fr::from_i64(-5));
        assert_eq!(c[2], Fr::one());
    }

    #[test]
    fn matching_query_gives_zero_inner_product() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(400);
        let rec = record(6, "female", "flu");
        let x = psi(&s, &s.convert_record(&rec).unwrap());
        let q = Query::new()
            .range("age", 4, 7)
            .equals("sex", "female")
            .one_of("illness", ["flu", "cold"]);
        let v = phi(&s, &q.convert(&s).unwrap(), &mut rng);
        assert_eq!(x.len(), s.n());
        assert_eq!(v.len(), s.n());
        assert!(inner_product(&x, &v).is_zero());
    }

    #[test]
    fn non_matching_query_gives_nonzero() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(401);
        let rec = record(6, "female", "flu");
        let x = psi(&s, &s.convert_record(&rec).unwrap());
        let q = Query::new().range("age", 8, 11).equals("sex", "female");
        let v = phi(&s, &q.convert(&s).unwrap(), &mut rng);
        assert!(!inner_product(&x, &v).is_zero());
    }

    #[test]
    fn dont_care_dimensions_are_zero() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(402);
        let q = Query::new().equals("sex", "male");
        let v = phi(&s, &q.convert(&s).unwrap(), &mut rng);
        // age block: 3 dims × degree 2 = positions 0..6 must be zero
        assert!(v[..6].iter().all(|c| c.is_zero()));
        // sex coefficient present
        assert!(!v[6].is_zero());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_encrypted_match_agrees_with_plain(age in 0i64..16, qlo in 0i64..16, qspan in 0i64..8, seed in any::<u64>()) {
            let qhi = (qlo + qspan).min(15);
            let s = schema();
            let mut rng = StdRng::seed_from_u64(seed);
            let rec = record(age, "f", "flu");
            let q = Query::new().range("age", qlo, qhi);
            // only test ranges the scheme can express
            if let Ok(conv) = q.convert(&s) {
                let x = psi(&s, &s.convert_record(&rec).unwrap());
                let v = phi(&s, &conv, &mut rng);
                let plain = q.matches_record(&s, &rec).unwrap();
                prop_assert_eq!(inner_product(&x, &v).is_zero(), plain);
            }
        }
    }
}
