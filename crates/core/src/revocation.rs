//! Revocation via a time attribute (§IV-C, "Revocation").
//!
//! Indexes carry their creation time in a hierarchical *time field*
//! (`year → month → week → day`, expressed here as a numeric day-index
//! hierarchy with calendar-shaped branching); capabilities carry an
//! authorized search *period* as a simple-range term over that field. A
//! capability whose period has passed cannot match indexes created later —
//! owners re-stamp the time value when they update their records, so
//! revoked users must return to an LTA for a fresh capability.

use crate::error::ApksError;
use crate::hierarchy::Hierarchy;
use crate::keyword::FieldValue;
use crate::query::Query;
use crate::schema::SchemaBuilder;

/// Name of the conventional time field.
pub const TIME_FIELD: &str = "time";

/// A date, resolved to day granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Date {
    /// Year (e.g. 2010).
    pub year: i64,
    /// Month 1–12.
    pub month: i64,
    /// Day 1–28 (the scheme's calendar uses uniform 28-day months:
    /// 4 weeks × 7 days — the hierarchy shape matters, not leap years).
    pub day: i64,
}

impl Date {
    /// Builds a date.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range month/day.
    pub fn new(year: i64, month: i64, day: i64) -> Date {
        assert!((1..=12).contains(&month), "month out of range");
        assert!((1..=28).contains(&day), "day out of range");
        Date { year, month, day }
    }

    /// The day index used in the numeric time hierarchy.
    pub fn day_index(&self, epoch_year: i64) -> i64 {
        ((self.year - epoch_year) * 12 + (self.month - 1)) * 28 + (self.day - 1)
    }
}

/// Builds the `year-month-week-day` time hierarchy covering
/// `[epoch_year, epoch_year + years)`.
///
/// Levels: root (whole span) → years → months → weeks → days; branching
/// follows the calendar (12 months/year, 4 weeks/month, 7 days/week), so a
/// capability period can be a run of years, months, weeks or days.
pub fn time_hierarchy(years: i64) -> Hierarchy {
    assert!(years >= 1);
    let total_days = years * 12 * 28;
    // Build day → week(7) → month(4) → year(12) → root by chained grouping.
    // Hierarchy::numeric groups uniformly, so compose via branching stages:
    // we use branching 7 at the bottom; the upper groupings by 4 and 12 are
    // realized by nesting numeric grouping stages manually.
    build_grouped(total_days, &[12, 4, 7])
}

/// Groups `0..count` by the given per-level branching factors
/// (top-down order), producing a balanced hierarchy.
fn build_grouped(count: i64, branchings: &[usize]) -> Hierarchy {
    use crate::hierarchy::Node;
    let mut level: Vec<Node> = (0..count)
        .map(|v| Node {
            label: v.to_string(),
            interval: Some((v, v)),
            children: Vec::new(),
        })
        .collect();
    for &b in branchings.iter().rev() {
        let mut upper = Vec::with_capacity(level.len().div_ceil(b));
        for chunk in level.chunks(b) {
            let lo = chunk.first().unwrap().interval.unwrap().0;
            let hi = chunk.last().unwrap().interval.unwrap().1;
            upper.push(Node {
                label: format!("{lo}-{hi}"),
                interval: Some((lo, hi)),
                children: chunk.to_vec(),
            });
        }
        level = upper;
    }
    let root = if level.len() == 1 {
        level.pop().unwrap()
    } else {
        let lo = level.first().unwrap().interval.unwrap().0;
        let hi = level.last().unwrap().interval.unwrap().1;
        Node {
            label: format!("{lo}-{hi}"),
            interval: Some((lo, hi)),
            children: level,
        }
    };
    Hierarchy::semantic(root).expect("grouped hierarchy is balanced by construction")
}

/// Extends a schema builder with the conventional time field.
///
/// `d` bounds how many same-level periods one capability may span.
pub fn with_time_field(builder: SchemaBuilder, years: i64, d: usize) -> SchemaBuilder {
    builder.hierarchical_field(TIME_FIELD, time_hierarchy(years), d)
}

/// The record value for an index created on `date`.
pub fn time_value(date: Date, epoch_year: i64) -> FieldValue {
    FieldValue::num(date.day_index(epoch_year))
}

/// Restricts a query to the search period `[from, to]` (inclusive).
///
/// # Errors
///
/// The resulting query will fail conversion if the period is not a union
/// of at most `d` same-level calendar ranges.
pub fn with_period(
    query: Query,
    from: Date,
    to: Date,
    epoch_year: i64,
) -> Result<Query, ApksError> {
    let lo = from.day_index(epoch_year);
    let hi = to.day_index(epoch_year);
    if lo > hi {
        return Err(ApksError::UnsupportedQuery("search period is empty".into()));
    }
    Ok(query.range(TIME_FIELD, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Record, Schema};

    #[test]
    fn hierarchy_shape() {
        let h = time_hierarchy(2);
        // levels: root, years(2), months(24), weeks(96), days(672)
        assert_eq!(h.depth(), 5);
        assert_eq!(h.level_nodes(1).len(), 2);
        assert_eq!(h.level_nodes(2).len(), 24);
        assert_eq!(h.level_nodes(3).len(), 96);
        assert_eq!(h.level_nodes(4).len(), 672);
    }

    #[test]
    fn day_index_math() {
        let epoch = 2010;
        assert_eq!(Date::new(2010, 1, 1).day_index(epoch), 0);
        assert_eq!(Date::new(2010, 2, 1).day_index(epoch), 28);
        assert_eq!(Date::new(2011, 1, 1).day_index(epoch), 336);
    }

    #[test]
    fn period_query_matches_in_window_only() {
        let epoch = 2010;
        let schema: std::sync::Arc<Schema> =
            with_time_field(Schema::builder().flat_field("illness", 1), 2, 6)
                .build()
                .unwrap();
        // index created in March 2010
        let rec = Record::new(vec![
            FieldValue::text("flu"),
            time_value(Date::new(2010, 3, 10), epoch),
        ]);
        // capability valid Jan–Jun 2010 (6 month nodes)
        let q = with_period(
            Query::new().equals("illness", "flu"),
            Date::new(2010, 1, 1),
            Date::new(2010, 6, 28),
            epoch,
        )
        .unwrap();
        assert!(q.matches_record(&schema, &rec).unwrap());

        // an index created in July 2010 is outside the window
        let late = Record::new(vec![
            FieldValue::text("flu"),
            time_value(Date::new(2010, 7, 1), epoch),
        ]);
        assert!(!q.matches_record(&schema, &late).unwrap());
    }

    #[test]
    fn expired_capability_cannot_reach_new_indexes() {
        let epoch = 2010;
        let schema = with_time_field(Schema::builder().flat_field("x", 1), 2, 4)
            .build()
            .unwrap();
        let q = with_period(
            Query::new().equals("x", "v"),
            Date::new(2010, 1, 1),
            Date::new(2010, 4, 28),
            epoch,
        )
        .unwrap();
        let fresh = Record::new(vec![
            FieldValue::text("v"),
            time_value(Date::new(2011, 2, 2), epoch),
        ]);
        assert!(!q.matches_record(&schema, &fresh).unwrap());
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn invalid_month_panics() {
        let _ = Date::new(2010, 13, 1);
    }
}
