//! A small textual query language.
//!
//! Grammar (case-insensitive keywords, `and`-separated conjuncts):
//!
//! ```text
//! query    := term ("and" term)*
//! term     := range | between | equals | subset
//! range    := "(" range ")" | number cmp ident cmp number   // 20 < age <= 30
//! between  := ident "in" "[" number "," number "]"          // age in [20, 30]
//! equals   := ident "=" value                               // sex = "female"
//! subset   := ident "in" "{" value ("," value)* "}"         // region in {"a","b"}
//! value    := string-literal | number | bare-ident
//! ```
//!
//! Comparison operators `<` and `<=` are normalized to the closed ranges
//! the scheme supports (`a < x` becomes `a+1 ≤ x`).

use crate::error::ApksError;
use crate::keyword::FieldValue;
use crate::query::{Condition, Query};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(i64),
    Le,
    Lt,
    Eq,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    And,
    In,
}

fn lex(text: &str) -> Result<Vec<Tok>, ApksError> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '[' => {
                chars.next();
                out.push(Tok::LBracket);
            }
            ']' => {
                chars.next();
                out.push(Tok::RBracket);
            }
            '{' => {
                chars.next();
                out.push(Tok::LBrace);
            }
            '}' => {
                chars.next();
                out.push(Tok::RBrace);
            }
            ',' => {
                chars.next();
                out.push(Tok::Comma);
            }
            '=' => {
                chars.next();
                out.push(Tok::Eq);
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Tok::Le);
                } else {
                    out.push(Tok::Lt);
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(ApksError::Parse("unterminated string".into())),
                    }
                }
                out.push(Tok::Str(s));
            }
            '-' | '0'..='9' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v: i64 = s
                    .parse()
                    .map_err(|_| ApksError::Parse(format!("bad number {s:?}")))?;
                out.push(Tok::Num(v));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '-' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match s.to_ascii_lowercase().as_str() {
                    "and" => out.push(Tok::And),
                    "in" => out.push(Tok::In),
                    _ => out.push(Tok::Ident(s)),
                }
            }
            other => {
                return Err(ApksError::Parse(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, ApksError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ApksError::Parse("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ApksError> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(ApksError::Parse(format!("expected {want:?}, got {got:?}")))
        }
    }

    fn value(&mut self) -> Result<FieldValue, ApksError> {
        match self.next()? {
            Tok::Str(s) => Ok(FieldValue::Text(s)),
            Tok::Num(v) => Ok(FieldValue::Num(v)),
            Tok::Ident(s) => Ok(FieldValue::Text(s)),
            other => Err(ApksError::Parse(format!("expected a value, got {other:?}"))),
        }
    }

    fn term(&mut self) -> Result<Condition, ApksError> {
        if self.peek() == Some(&Tok::LParen) {
            self.next()?;
            let t = self.term()?;
            self.expect(&Tok::RParen)?;
            return Ok(t);
        }
        match self.next()? {
            // number cmp ident cmp number
            Tok::Num(lo) => {
                let lo_strict = match self.next()? {
                    Tok::Le => false,
                    Tok::Lt => true,
                    other => {
                        return Err(ApksError::Parse(format!(
                            "expected < or <= after number, got {other:?}"
                        )))
                    }
                };
                let field = match self.next()? {
                    Tok::Ident(f) => f,
                    other => {
                        return Err(ApksError::Parse(format!(
                            "expected field name, got {other:?}"
                        )))
                    }
                };
                let hi_strict = match self.next()? {
                    Tok::Le => false,
                    Tok::Lt => true,
                    other => {
                        return Err(ApksError::Parse(format!(
                            "expected < or <= after field, got {other:?}"
                        )))
                    }
                };
                let hi = match self.next()? {
                    Tok::Num(v) => v,
                    other => {
                        return Err(ApksError::Parse(format!(
                            "expected upper bound, got {other:?}"
                        )))
                    }
                };
                Ok(Condition::Range {
                    field,
                    lo: if lo_strict { lo + 1 } else { lo },
                    hi: if hi_strict { hi - 1 } else { hi },
                })
            }
            Tok::Ident(field) => match self.next()? {
                Tok::Eq => Ok(Condition::Equals {
                    field,
                    value: self.value()?,
                }),
                Tok::In => match self.next()? {
                    Tok::LBracket => {
                        let lo = match self.next()? {
                            Tok::Num(v) => v,
                            other => {
                                return Err(ApksError::Parse(format!(
                                    "expected number, got {other:?}"
                                )))
                            }
                        };
                        self.expect(&Tok::Comma)?;
                        let hi = match self.next()? {
                            Tok::Num(v) => v,
                            other => {
                                return Err(ApksError::Parse(format!(
                                    "expected number, got {other:?}"
                                )))
                            }
                        };
                        self.expect(&Tok::RBracket)?;
                        Ok(Condition::Range { field, lo, hi })
                    }
                    Tok::LBrace => {
                        let mut values = vec![self.value()?];
                        while self.peek() == Some(&Tok::Comma) {
                            self.next()?;
                            values.push(self.value()?);
                        }
                        self.expect(&Tok::RBrace)?;
                        Ok(Condition::OneOf { field, values })
                    }
                    other => Err(ApksError::Parse(format!(
                        "expected [ or {{ after 'in', got {other:?}"
                    ))),
                },
                other => Err(ApksError::Parse(format!(
                    "expected = or 'in' after field, got {other:?}"
                ))),
            },
            other => Err(ApksError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

/// Parses the query language into a [`Query`].
///
/// # Errors
///
/// Returns [`ApksError::Parse`] with a description of the offending token.
pub fn parse_query(text: &str) -> Result<Query, ApksError> {
    let toks = lex(text)?;
    if toks.is_empty() {
        return Err(ApksError::Parse("empty query".into()));
    }
    let mut p = Parser { toks, pos: 0 };
    let mut conditions = vec![p.term()?];
    while p.peek() == Some(&Tok::And) {
        p.next()?;
        conditions.push(p.term()?);
    }
    if p.pos != p.toks.len() {
        return Err(ApksError::Parse(format!(
            "trailing tokens starting at {:?}",
            p.toks[p.pos]
        )));
    }
    Ok(Query { conditions })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        // the query from the paper's introduction
        let q =
            parse_query("(20 < age < 30) and sex = \"female\" and illness = \"diabetes\"").unwrap();
        assert_eq!(q.conditions.len(), 3);
        assert_eq!(
            q.conditions[0],
            Condition::Range {
                field: "age".into(),
                lo: 21,
                hi: 29
            }
        );
        assert_eq!(
            q.conditions[1],
            Condition::Equals {
                field: "sex".into(),
                value: FieldValue::text("female")
            }
        );
    }

    #[test]
    fn parses_inclusive_range_forms() {
        let a = parse_query("30 <= age <= 60").unwrap();
        let b = parse_query("age in [30, 60]").unwrap();
        assert_eq!(a.conditions, b.conditions);
    }

    #[test]
    fn parses_subset() {
        let q = parse_query("region in {\"Boston\", \"Worcester\"}").unwrap();
        assert_eq!(
            q.conditions[0],
            Condition::OneOf {
                field: "region".into(),
                values: vec![FieldValue::text("Boston"), FieldValue::text("Worcester")],
            }
        );
    }

    #[test]
    fn parses_bare_idents_and_numbers_as_values() {
        let q = parse_query("sex = male and age = 25").unwrap();
        assert_eq!(
            q.conditions[1],
            Condition::Equals {
                field: "age".into(),
                value: FieldValue::num(25)
            }
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "and",
            "age >",
            "age in [1 2]",
            "region in {",
            "sex = \"unterminated",
            "20 < age",
            "age = 5 garbage",
        ] {
            assert!(parse_query(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn negative_numbers() {
        let q = parse_query("temp in [-10, 5]").unwrap();
        assert_eq!(
            q.conditions[0],
            Condition::Range {
                field: "temp".into(),
                lo: -10,
                hi: 5
            }
        );
    }
}
