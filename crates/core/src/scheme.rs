//! The APKS scheme: `Setup`, `GenIndex`, `GenCap`, `Search`,
//! `DelegateCap` (Fig. 5 of the paper), plus the APKS⁺ variants.
//!
//! All objects carry a schema digest so that indexes, capabilities and
//! public keys from different deployments cannot be mixed silently.

use crate::encoding::{phi, psi};
use crate::error::ApksError;
use crate::policy::QueryPolicy;
use crate::query::Query;
use crate::schema::{Record, Schema};
use apks_curve::CurveParams;
use apks_hpe::{Hpe, HpeCiphertext, HpeMasterKey, HpePublicKey, HpeSecretKey, PreparedHpeKey};
use apks_math::encode::{DecodeError, Reader, Writer};
use apks_math::sha256::Sha256;
use rand::Rng;
use std::sync::Arc;

/// The APKS system context: curve parameters + schema + the derived HPE
/// instance.
#[derive(Clone, Debug)]
pub struct ApksSystem {
    params: Arc<CurveParams>,
    schema: Arc<Schema>,
    hpe: Hpe,
    digest: [u8; 32],
}

/// The APKS public key (the paper's `PK = (pk, φ, ψ)`: the HPE public key
/// plus the schema, which determines both mappings).
#[derive(Clone, Debug)]
pub struct ApksPublicKey {
    /// The underlying HPE public key.
    pub hpe: HpePublicKey,
    digest: [u8; 32],
}

/// The APKS master secret key, held by the TA.
#[derive(Clone, Debug)]
pub struct ApksMasterKey {
    /// The underlying HPE master key.
    pub hpe: HpeMasterKey,
}

/// The APKS⁺ master secret key: blinded master key plus the blinding
/// secret `r` (provisioned to proxies as `r⁻¹` shares).
#[derive(Clone, Debug)]
pub struct ApksPlusMasterKey {
    /// The blinded master key used for capability generation.
    pub inner: ApksMasterKey,
    /// The blinding secret `r`.
    pub blinding: apks_math::Fr,
}

/// An encrypted index entry (one per record).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncryptedIndex {
    /// The HPE ciphertext.
    pub ct: HpeCiphertext,
    digest: [u8; 32],
}

/// A search capability (trapdoor) `T_Q`.
///
/// `delegatable` capabilities can be further restricted by an LTA;
/// [`Capability::finalize`] strips that power before the capability is
/// shipped to the cloud server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Capability {
    /// The underlying (possibly delegated) HPE secret key.
    pub key: HpeSecretKey,
    digest: [u8; 32],
}

/// A capability preprocessed for a corpus scan.
///
/// Produced once per search by [`ApksSystem::prepare_capability`]; every
/// [`ApksSystem::search_prepared`] against it skips the Miller-loop
/// point arithmetic (precomputed line coefficients are evaluated
/// instead). Verdicts are identical to [`ApksSystem::search`].
#[derive(Clone, Debug)]
pub struct PreparedCapability {
    /// The prepared HPE key (decryption component only).
    pub key: PreparedHpeKey,
    digest: [u8; 32],
}

impl PreparedCapability {
    /// Ambient dimension `n₀` of the prepared key.
    pub fn dim(&self) -> usize {
        self.key.dim()
    }
}

impl ApksSystem {
    /// Builds a system for the given parameters and schema.
    pub fn new(params: Arc<CurveParams>, schema: Arc<Schema>) -> ApksSystem {
        let hpe = Hpe::new(params.clone(), schema.n());
        let digest = schema_digest(&schema);
        ApksSystem {
            params,
            schema,
            hpe,
            digest,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The curve parameters.
    pub fn params(&self) -> &Arc<CurveParams> {
        &self.params
    }

    /// The underlying HPE instance.
    pub fn hpe(&self) -> &Hpe {
        &self.hpe
    }

    /// Vector length `n` (= `Σ dᵢ + 1` over expanded dimensions).
    pub fn n(&self) -> usize {
        self.schema.n()
    }

    /// The deployment's schema digest — the identity every capability,
    /// index, and on-disk segment is pinned to.
    pub fn schema_digest(&self) -> [u8; 32] {
        self.digest
    }

    /// Rewraps a decoded HPE public key with this system's digest
    /// (used by persistence; the dimension is validated by the caller).
    pub fn public_key_from_parts(&self, hpe: HpePublicKey) -> ApksPublicKey {
        ApksPublicKey {
            hpe,
            digest: self.digest,
        }
    }

    /// `Setup(1^κ)` — Fig. 5.
    pub fn setup<R: Rng + ?Sized>(&self, rng: &mut R) -> (ApksPublicKey, ApksMasterKey) {
        let (pk, msk) = self.hpe.setup(rng);
        (
            ApksPublicKey {
                hpe: pk,
                digest: self.digest,
            },
            ApksMasterKey { hpe: msk },
        )
    }

    /// APKS⁺ setup: blinded master key for query privacy (§V).
    pub fn setup_plus<R: Rng + ?Sized>(&self, rng: &mut R) -> (ApksPublicKey, ApksPlusMasterKey) {
        let (pk, mk) = self.hpe.setup_plus(rng);
        (
            ApksPublicKey {
                hpe: pk,
                digest: self.digest,
            },
            ApksPlusMasterKey {
                inner: ApksMasterKey { hpe: mk.msk },
                blinding: mk.blinding,
            },
        )
    }

    /// `GenIndex(PK, Z⃗)`: encrypts a record's keyword index.
    ///
    /// # Errors
    ///
    /// Fails if the record does not fit the schema or the key belongs to a
    /// different deployment.
    pub fn gen_index<R: Rng + ?Sized>(
        &self,
        pk: &ApksPublicKey,
        record: &Record,
        rng: &mut R,
    ) -> Result<EncryptedIndex, ApksError> {
        self.check_digest(pk.digest)?;
        let keywords = self.schema.convert_record(record)?;
        let x = psi(&self.schema, &keywords);
        let ct = self.hpe.encrypt_marker(&pk.hpe, &x, rng)?;
        Ok(EncryptedIndex {
            ct,
            digest: self.digest,
        })
    }

    /// APKS⁺ `PartialEnc`: identical computation to [`Self::gen_index`];
    /// the result only becomes searchable after proxy transformation.
    ///
    /// # Errors
    ///
    /// As [`Self::gen_index`].
    pub fn gen_partial_index<R: Rng + ?Sized>(
        &self,
        pk: &ApksPublicKey,
        record: &Record,
        rng: &mut R,
    ) -> Result<EncryptedIndex, ApksError> {
        self.gen_index(pk, record, rng)
    }

    /// `GenCap(PK, MSK, Q)`: issues a capability for a query, subject to a
    /// policy.
    ///
    /// # Errors
    ///
    /// Fails if the query cannot be converted under the schema or violates
    /// the policy.
    pub fn gen_cap<R: Rng + ?Sized>(
        &self,
        pk: &ApksPublicKey,
        msk: &ApksMasterKey,
        query: &Query,
        policy: &QueryPolicy,
        rng: &mut R,
    ) -> Result<Capability, ApksError> {
        self.check_digest(pk.digest)?;
        let converted = query.convert(&self.schema)?;
        policy.check(&converted)?;
        let v = phi(&self.schema, &converted, rng);
        let key = self.hpe.gen_key(&pk.hpe, &msk.hpe, &v, rng)?;
        Ok(Capability {
            key,
            digest: self.digest,
        })
    }

    /// As [`Self::gen_cap`] but assembling the key by point arithmetic
    /// over `B*` (the paper's measured implementation — Fig. 8(c)'s
    /// "don't care" speed-up lives here; the exponent path of
    /// [`Self::gen_cap`] is flat in the number of constrained
    /// dimensions).
    ///
    /// # Errors
    ///
    /// As [`Self::gen_cap`].
    pub fn gen_cap_via_points<R: Rng + ?Sized>(
        &self,
        pk: &ApksPublicKey,
        msk: &ApksMasterKey,
        query: &Query,
        policy: &QueryPolicy,
        rng: &mut R,
    ) -> Result<Capability, ApksError> {
        self.check_digest(pk.digest)?;
        let converted = query.convert(&self.schema)?;
        policy.check(&converted)?;
        let v = phi(&self.schema, &converted, rng);
        let key = self.hpe.gen_key_via_points(&pk.hpe, &msk.hpe, &v, rng)?;
        Ok(Capability {
            key,
            digest: self.digest,
        })
    }

    /// `DelegateCap(PK, T_{Q₁}, Q₂)`: restricts an existing capability to
    /// `Q₁ ∧ Q₂`.
    ///
    /// # Errors
    ///
    /// Fails if the parent capability was finalized or the new query is
    /// invalid.
    pub fn delegate_cap<R: Rng + ?Sized>(
        &self,
        pk: &ApksPublicKey,
        parent: &Capability,
        query: &Query,
        rng: &mut R,
    ) -> Result<Capability, ApksError> {
        self.check_digest(pk.digest)?;
        self.check_digest(parent.digest)?;
        if !parent.key.can_delegate() {
            return Err(ApksError::NotDelegatable);
        }
        let converted = query.convert(&self.schema)?;
        let v = phi(&self.schema, &converted, rng);
        let key = self.hpe.delegate(&pk.hpe, &parent.key, &v, rng)?;
        Ok(Capability {
            key,
            digest: self.digest,
        })
    }

    /// `Search(PK, T_Q, E(Z⃗))`: evaluates a capability against one
    /// encrypted index. Costs `n + 3` pairings (one multi-pairing).
    ///
    /// # Errors
    ///
    /// Fails on deployment mismatch.
    pub fn search(
        &self,
        pk: &ApksPublicKey,
        cap: &Capability,
        index: &EncryptedIndex,
    ) -> Result<bool, ApksError> {
        self.check_digest(cap.digest)?;
        self.check_digest(index.digest)?;
        Ok(self.hpe.test(&pk.hpe, &cap.key, &index.ct)?)
    }

    /// Precomputes a capability's Miller lines for a corpus scan.
    ///
    /// One-time cost of `n + 3` Miller loops; amortized away after a
    /// couple of [`ApksSystem::search_prepared`] calls. The digest check
    /// happens here once, so the per-document path only re-checks the
    /// index side.
    ///
    /// # Errors
    ///
    /// Fails on deployment mismatch.
    pub fn prepare_capability(&self, cap: &Capability) -> Result<PreparedCapability, ApksError> {
        self.check_digest(cap.digest)?;
        Ok(PreparedCapability {
            key: self.hpe.prepare_key(&cap.key),
            digest: cap.digest,
        })
    }

    /// [`ApksSystem::search`] with a prepared capability: identical
    /// verdicts, pairings evaluated from precomputed line coefficients
    /// (the paper's "with preprocessing" mode, §VII-B.4).
    ///
    /// # Errors
    ///
    /// Fails on deployment mismatch.
    pub fn search_prepared(
        &self,
        pk: &ApksPublicKey,
        cap: &PreparedCapability,
        index: &EncryptedIndex,
    ) -> Result<bool, ApksError> {
        self.check_digest(cap.digest)?;
        self.check_digest(index.digest)?;
        Ok(self.hpe.test_prepared(&pk.hpe, &cap.key, &index.ct)?)
    }

    /// [`ApksSystem::search_prepared`] for a wave of prepared
    /// capabilities against one index: the ciphertext's coordinates are
    /// loaded once and all Miller loops run in lockstep
    /// ([`Hpe::test_prepared_wave`]), one final exponentiation per
    /// capability. Verdict `j` is identical to `search_prepared(pk,
    /// caps[j], index)`.
    ///
    /// # Errors
    ///
    /// Fails on deployment mismatch of the index or any capability.
    pub fn search_prepared_wave(
        &self,
        pk: &ApksPublicKey,
        caps: &[&PreparedCapability],
        index: &EncryptedIndex,
    ) -> Result<Vec<bool>, ApksError> {
        for cap in caps {
            self.check_digest(cap.digest)?;
        }
        self.check_digest(index.digest)?;
        let keys: Vec<&PreparedHpeKey> = caps.iter().map(|c| &c.key).collect();
        Ok(self.hpe.test_prepared_wave(&pk.hpe, &keys, &index.ct)?)
    }

    fn check_digest(&self, digest: [u8; 32]) -> Result<(), ApksError> {
        if digest != self.digest {
            return Err(ApksError::InvalidRecord(
                "object belongs to a different deployment/schema".into(),
            ));
        }
        Ok(())
    }
}

impl Capability {
    /// Strips delegation/re-randomization components so the recipient can
    /// only run `Search`.
    pub fn finalize(&self) -> Capability {
        Capability {
            key: self.key.finalize(),
            digest: self.digest,
        }
    }

    /// True iff this capability may be further delegated.
    pub fn can_delegate(&self) -> bool {
        self.key.can_delegate()
    }

    /// Canonical encoding.
    pub fn encode(&self, params: &CurveParams, w: &mut Writer) {
        w.bytes(&self.digest);
        self.key.encode(params, w);
    }

    /// Decodes a capability.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed bytes.
    pub fn decode(params: &CurveParams, r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let digest: [u8; 32] = r
            .bytes(32)?
            .try_into()
            .map_err(|_| DecodeError::UnexpectedEnd)?;
        let key = HpeSecretKey::decode(params, r)?;
        Ok(Capability { key, digest })
    }

    /// Encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        32 + self.key.encoded_size()
    }
}

impl EncryptedIndex {
    /// Canonical encoding.
    pub fn encode(&self, params: &CurveParams, w: &mut Writer) {
        w.bytes(&self.digest);
        self.ct.encode(params, w);
    }

    /// Decodes an index entry.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed bytes.
    pub fn decode(params: &CurveParams, r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let digest: [u8; 32] = r
            .bytes(32)?
            .try_into()
            .map_err(|_| DecodeError::UnexpectedEnd)?;
        let ct = HpeCiphertext::decode(params, r)?;
        Ok(EncryptedIndex { ct, digest })
    }

    /// Encoded size in bytes (schema digest + ciphertext).
    pub fn encoded_size(&self) -> usize {
        32 + HpeCiphertext::encoded_size(self.ct.c1.dim())
    }
}

/// APKS⁺ proxy transformation: applies a proxy's share to a partial index.
pub fn proxy_transform(
    system: &ApksSystem,
    share: &apks_hpe::ProxyTransformKey,
    index: &EncryptedIndex,
) -> EncryptedIndex {
    EncryptedIndex {
        ct: share.transform(system.hpe(), &index.ct),
        digest: index.digest,
    }
}

/// A deterministic structural digest of a schema (hash of the canonical
/// encoding, stable across processes).
fn schema_digest(schema: &Schema) -> [u8; 32] {
    let mut w = Writer::new();
    crate::persist::encode_schema(schema, &mut w);
    let mut h = Sha256::new();
    h.update(b"apks:schema:v1");
    h.update(&w.finish());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Hierarchy;
    use crate::keyword::FieldValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_system() -> ApksSystem {
        let schema = Schema::builder()
            .hierarchical_field("age", Hierarchy::numeric(0, 15, 4), 2)
            .flat_field("sex", 1)
            .build()
            .unwrap();
        ApksSystem::new(CurveParams::fast(), schema)
    }

    fn record(age: i64, sex: &str) -> Record {
        Record::new(vec![FieldValue::num(age), FieldValue::text(sex)])
    }

    #[test]
    fn end_to_end_search() {
        let sys = small_system();
        let mut rng = StdRng::seed_from_u64(500);
        let (pk, msk) = sys.setup(&mut rng);
        let idx = sys.gen_index(&pk, &record(6, "female"), &mut rng).unwrap();

        let hit = Query::new().range("age", 4, 7).equals("sex", "female");
        let cap = sys
            .gen_cap(&pk, &msk, &hit, &QueryPolicy::default(), &mut rng)
            .unwrap();
        assert!(sys.search(&pk, &cap, &idx).unwrap());

        let miss = Query::new().range("age", 8, 11).equals("sex", "female");
        let cap2 = sys
            .gen_cap(&pk, &msk, &miss, &QueryPolicy::default(), &mut rng)
            .unwrap();
        assert!(!sys.search(&pk, &cap2, &idx).unwrap());
    }

    #[test]
    fn prepared_search_matches_plain_search() {
        let sys = small_system();
        let mut rng = StdRng::seed_from_u64(507);
        let (pk, msk) = sys.setup(&mut rng);
        let cap = sys
            .gen_cap(
                &pk,
                &msk,
                &Query::new().range("age", 4, 7).equals("sex", "female"),
                &QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        let prep = sys.prepare_capability(&cap).unwrap();
        assert_eq!(prep.dim(), sys.n() + 3);
        for (age, sex) in [(6, "female"), (12, "female"), (6, "male"), (0, "male")] {
            let idx = sys.gen_index(&pk, &record(age, sex), &mut rng).unwrap();
            assert_eq!(
                sys.search_prepared(&pk, &prep, &idx).unwrap(),
                sys.search(&pk, &cap, &idx).unwrap(),
                "verdict diverged for age={age} sex={sex}"
            );
        }
    }

    #[test]
    fn prepared_search_rejects_cross_deployment() {
        let sys_a = small_system();
        let schema_b = Schema::builder().flat_field("other", 1).build().unwrap();
        let sys_b = ApksSystem::new(CurveParams::fast(), schema_b);
        let mut rng = StdRng::seed_from_u64(508);
        let (pk_a, msk_a) = sys_a.setup(&mut rng);
        let (pk_b, _) = sys_b.setup(&mut rng);
        let cap = sys_a
            .gen_cap(
                &pk_a,
                &msk_a,
                &Query::new().equals("sex", "male"),
                &QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        // preparing a foreign capability fails up front
        assert!(sys_b.prepare_capability(&cap).is_err());
        // and a prepared capability still rejects foreign indexes
        let prep = sys_a.prepare_capability(&cap).unwrap();
        let idx_b = sys_b
            .gen_index(&pk_b, &Record::new(vec![FieldValue::text("v")]), &mut rng)
            .unwrap();
        assert!(sys_a.search_prepared(&pk_a, &prep, &idx_b).is_err());
    }

    #[test]
    fn delegation_restricts() {
        let sys = small_system();
        let mut rng = StdRng::seed_from_u64(501);
        let (pk, msk) = sys.setup(&mut rng);

        // LTA capability: sex = female
        let base = sys
            .gen_cap(
                &pk,
                &msk,
                &Query::new().equals("sex", "female"),
                &QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        // delegated: AND age in [4, 7]
        let delegated = sys
            .delegate_cap(&pk, &base, &Query::new().range("age", 4, 7), &mut rng)
            .unwrap();

        let young_f = sys.gen_index(&pk, &record(5, "female"), &mut rng).unwrap();
        let old_f = sys.gen_index(&pk, &record(12, "female"), &mut rng).unwrap();
        let young_m = sys.gen_index(&pk, &record(5, "male"), &mut rng).unwrap();

        assert!(sys.search(&pk, &base, &young_f).unwrap());
        assert!(sys.search(&pk, &base, &old_f).unwrap());
        assert!(sys.search(&pk, &delegated, &young_f).unwrap());
        assert!(!sys.search(&pk, &delegated, &old_f).unwrap());
        assert!(!sys.search(&pk, &delegated, &young_m).unwrap());
    }

    #[test]
    fn finalized_capability_cannot_delegate() {
        let sys = small_system();
        let mut rng = StdRng::seed_from_u64(502);
        let (pk, msk) = sys.setup(&mut rng);
        let cap = sys
            .gen_cap(
                &pk,
                &msk,
                &Query::new().equals("sex", "male"),
                &QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        let fin = cap.finalize();
        assert!(!fin.can_delegate());
        let err = sys
            .delegate_cap(&pk, &fin, &Query::new().range("age", 0, 3), &mut rng)
            .unwrap_err();
        assert_eq!(err, ApksError::NotDelegatable);
        // still searches
        let idx = sys.gen_index(&pk, &record(2, "male"), &mut rng).unwrap();
        assert!(sys.search(&pk, &fin, &idx).unwrap());
    }

    #[test]
    fn policy_enforced_at_gen_cap() {
        let sys = small_system();
        let mut rng = StdRng::seed_from_u64(503);
        let (pk, msk) = sys.setup(&mut rng);
        let policy = QueryPolicy {
            min_dimensions: 2,
            max_total_or_terms: 0,
        };
        let thin = Query::new().equals("sex", "male");
        assert!(matches!(
            sys.gen_cap(&pk, &msk, &thin, &policy, &mut rng),
            Err(ApksError::PolicyViolation(_))
        ));
    }

    #[test]
    fn plus_flow_with_proxy() {
        let sys = small_system();
        let mut rng = StdRng::seed_from_u64(504);
        let (pk, mk) = sys.setup_plus(&mut rng);
        let cap = sys
            .gen_cap(
                &pk,
                &mk.inner,
                &Query::new().equals("sex", "female"),
                &QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        let partial = sys
            .gen_partial_index(&pk, &record(6, "female"), &mut rng)
            .unwrap();
        // untransformed: unsearchable
        assert!(!sys.search(&pk, &cap, &partial).unwrap());
        let share = apks_hpe::ProxyTransformKey {
            r_inv: mk.blinding.inv().unwrap(),
        };
        let full = proxy_transform(&sys, &share, &partial);
        assert!(sys.search(&pk, &cap, &full).unwrap());
    }

    #[test]
    fn capability_encoding_roundtrip() {
        let sys = small_system();
        let mut rng = StdRng::seed_from_u64(505);
        let (pk, msk) = sys.setup(&mut rng);
        let cap = sys
            .gen_cap(
                &pk,
                &msk,
                &Query::new().equals("sex", "female"),
                &QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        let mut w = Writer::new();
        cap.encode(sys.params(), &mut w);
        let buf = w.finish();
        assert_eq!(buf.len(), cap.encoded_size());
        let mut r = Reader::new(&buf);
        let cap2 = Capability::decode(sys.params(), &mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(cap, cap2);
    }

    #[test]
    fn cross_deployment_objects_rejected() {
        let sys_a = small_system();
        let schema_b = Schema::builder().flat_field("other", 1).build().unwrap();
        let sys_b = ApksSystem::new(CurveParams::fast(), schema_b);
        let mut rng = StdRng::seed_from_u64(506);
        let (pk_a, msk_a) = sys_a.setup(&mut rng);
        let (pk_b, _) = sys_b.setup(&mut rng);
        let cap = sys_a
            .gen_cap(
                &pk_a,
                &msk_a,
                &Query::new().equals("sex", "male"),
                &QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        let idx_b = sys_b
            .gen_index(&pk_b, &Record::new(vec![FieldValue::text("v")]), &mut rng)
            .unwrap();
        assert!(sys_a.search(&pk_a, &cap, &idx_b).is_err());
        // and pk from the wrong system
        assert!(sys_a
            .gen_index(&pk_b, &record(3, "male"), &mut rng)
            .is_err());
    }
}
