//! Deterministic fault injection for the APKS⁺ availability-critical
//! paths.
//!
//! The paper's deployment (§VI) interposes semi-trusted proxies between
//! owners and the cloud, which makes the proxy hop and the corpus scan
//! the two paths whose availability decides whether the system is usable
//! at all. This module provides the *model* of what can go wrong there —
//! a [`FaultPlan`] that answers, purely as a function of a seed, "does
//! this operation fault, and for how many attempts?" — plus the two
//! pieces of machinery the resilient layers above share:
//!
//! * [`RetryPolicy`] — capped exponential backoff with deterministic
//!   jitter, measured in **virtual ticks**, never wall-clock sleeps;
//! * [`VirtualClock`] — a shared monotonic tick counter the retry loops
//!   advance instead of sleeping, so chaos tests run at full speed and
//!   two runs with the same seed advance the clock identically.
//!
//! Nothing in this module touches the cryptography: faults are injected
//! *around* `ProxyEnc` and `Search`, replacing an evaluation with an
//! error, never corrupting ciphertexts or keys. Every decision is a pure
//! function of `(seed, site, operation)`, so a run is exactly
//! reproducible from its [`FaultConfig`] — the property the seeded chaos
//! suite in `tests/tests/chaos.rs` asserts.

use std::sync::atomic::{AtomicU64, Ordering};

/// Rates are expressed in permille (0..=1000) so fault decisions stay in
/// integer arithmetic and are bit-reproducible across platforms.
pub const PERMILLE: u32 = 1000;

// Domain-separation tags: each fault family draws from an independent
// deterministic stream, so e.g. raising the timeout rate does not shift
// which documents are poisoned.
const DOMAIN_PROXY_TIMEOUT: u64 = 0x50_54;
const DOMAIN_TRANSFORM_ERROR: u64 = 0x54_45;
const DOMAIN_DROP_UPLOAD: u64 = 0x44_55;
const DOMAIN_DOC_POISONED: u64 = 0x44_50;
const DOMAIN_DOC_FLAKY: u64 = 0x44_46;
const DOMAIN_DOC_SLOW: u64 = 0x44_53;
const DOMAIN_BURST: u64 = 0x42_52;
const DOMAIN_JITTER: u64 = 0x4a_54;

/// SplitMix64 finalizer — the mixing core of every plan decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a site label (e.g. a proxy id), so string-identified
/// components get independent fault streams.
fn hash_site(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Knobs of a deterministic fault schedule. All rates in permille.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the schedule; same seed ⇒ same faults, always.
    pub seed: u64,
    /// Probability a proxy transform operation times out.
    pub proxy_timeout_permille: u32,
    /// Probability a proxy transform fails transiently (e.g. a crashed
    /// worker) — distinct stream from timeouts.
    pub transform_error_permille: u32,
    /// Probability an upload to the cloud store is dropped in flight.
    pub drop_upload_permille: u32,
    /// Probability a stored document is *poisoned*: its evaluation
    /// faults on every attempt and the scan must route around it.
    pub poisoned_doc_permille: u32,
    /// Probability a stored document is *flaky*: evaluation fails for a
    /// bounded burst of attempts, then succeeds.
    pub flaky_doc_permille: u32,
    /// Probability a stored document is merely *slow* (adds virtual
    /// latency, still evaluates correctly).
    pub slow_doc_permille: u32,
    /// Upper bound on consecutive failing attempts for transient faults;
    /// a faulted operation's actual burst length is drawn
    /// deterministically from `1..=max_fault_burst`. Set this above a
    /// [`RetryPolicy::max_attempts`] to make some operations exceed the
    /// retry budget (a "dead" component for that operation).
    pub max_fault_burst: u32,
    /// Virtual ticks a slow document adds to the clock.
    pub slow_doc_ticks: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            proxy_timeout_permille: 0,
            transform_error_permille: 0,
            drop_upload_permille: 0,
            poisoned_doc_permille: 0,
            flaky_doc_permille: 0,
            slow_doc_permille: 0,
            max_fault_burst: 2,
            slow_doc_ticks: 5,
        }
    }
}

impl FaultConfig {
    /// A schedule that only faults the proxy hop (timeouts + transform
    /// errors at the given rates), with transient bursts short enough
    /// for the default [`RetryPolicy`] to always recover.
    pub fn proxy_only(seed: u64, timeout_permille: u32, error_permille: u32) -> FaultConfig {
        FaultConfig {
            seed,
            proxy_timeout_permille: timeout_permille,
            transform_error_permille: error_permille,
            ..FaultConfig::default()
        }
    }
}

/// A fault injected on one proxy transform attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProxyFault {
    /// The proxy did not answer within the (virtual) deadline.
    Timeout,
    /// The proxy answered with a transient transform error.
    TransformError,
}

/// A fault attached to one stored document during a scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DocFault {
    /// Evaluation faults on every attempt; degraded mode skips and
    /// records the document.
    Poisoned,
    /// Evaluation fails for `burst` attempts, then succeeds.
    Flaky {
        /// Number of leading attempts that fail.
        burst: u32,
    },
    /// Evaluation succeeds but costs `ticks` extra virtual time.
    Slow {
        /// Virtual ticks added to the clock.
        ticks: u64,
    },
}

/// A deterministic, seed-driven schedule of faults.
///
/// Decisions are pure: `plan.proxy_fault(p, op, a)` returns the same
/// answer every time it is asked, on every thread, in every run with the
/// same [`FaultConfig`]. That is what makes chaos runs replayable.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// Wraps a config into a queryable plan.
    pub fn new(config: FaultConfig) -> FaultPlan {
        FaultPlan { config }
    }

    /// The schedule's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// One deterministic draw for `(domain, site, op)`.
    fn roll(&self, domain: u64, site: u64, op: u64) -> u64 {
        mix(mix(self.config.seed ^ domain) ^ mix(site).wrapping_add(mix(op)))
    }

    /// True iff the draw `h` lands under `permille`.
    fn hits(h: u64, permille: u32) -> bool {
        (h % PERMILLE as u64) < permille.min(PERMILLE) as u64
    }

    /// Burst length (consecutive failing attempts) for a faulted
    /// operation identified by draw `h`: `1..=max_fault_burst`.
    fn burst(&self, h: u64) -> u32 {
        1 + (mix(h ^ DOMAIN_BURST) % self.config.max_fault_burst.max(1) as u64) as u32
    }

    /// Does attempt number `attempt` (0-based) of transform operation
    /// `op` at proxy `proxy` fault? Transient: once `attempt` reaches
    /// the operation's burst length the fault clears.
    pub fn proxy_fault(&self, proxy: &str, op: u64, attempt: u32) -> Option<ProxyFault> {
        let site = hash_site(proxy);
        let t = self.roll(DOMAIN_PROXY_TIMEOUT, site, op);
        if Self::hits(t, self.config.proxy_timeout_permille) && attempt < self.burst(t) {
            return Some(ProxyFault::Timeout);
        }
        let e = self.roll(DOMAIN_TRANSFORM_ERROR, site, op);
        if Self::hits(e, self.config.transform_error_permille) && attempt < self.burst(e) {
            return Some(ProxyFault::TransformError);
        }
        None
    }

    /// Does attempt `attempt` of upload operation `op` get dropped?
    pub fn upload_dropped(&self, op: u64, attempt: u32) -> bool {
        let h = self.roll(DOMAIN_DROP_UPLOAD, 0, op);
        Self::hits(h, self.config.drop_upload_permille) && attempt < self.burst(h)
    }

    /// The fault (if any) attached to stored document `doc`. Document
    /// faults are a property of the document, not of the attempt — a
    /// poisoned document is poisoned in every scan.
    pub fn doc_fault(&self, doc: u64) -> Option<DocFault> {
        let p = self.roll(DOMAIN_DOC_POISONED, doc, 0);
        if Self::hits(p, self.config.poisoned_doc_permille) {
            return Some(DocFault::Poisoned);
        }
        let f = self.roll(DOMAIN_DOC_FLAKY, doc, 0);
        if Self::hits(f, self.config.flaky_doc_permille) {
            return Some(DocFault::Flaky {
                burst: self.burst(f),
            });
        }
        let s = self.roll(DOMAIN_DOC_SLOW, doc, 0);
        if Self::hits(s, self.config.slow_doc_permille) {
            return Some(DocFault::Slow {
                ticks: self.config.slow_doc_ticks,
            });
        }
        None
    }
}

/// Retry with capped exponential backoff and deterministic jitter.
///
/// Delays are virtual ticks fed to a [`VirtualClock`]; no code in the
/// workspace sleeps on them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: u64,
    /// Cap on the exponential component.
    pub max_delay: u64,
    /// Upper bound on the additive jitter drawn per retry.
    pub jitter: u64,
    /// Seed folded into every jitter draw. Two deployments retrying the
    /// same operation (same `token`) with different seeds draw
    /// *different* jitter, so a fleet of clients hammering a recovering
    /// replica spreads out instead of synchronizing into a thundering
    /// herd. Zero is a legal seed — determinism never depends on the
    /// seed being "random".
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: 2,
            max_delay: 16,
            jitter: 3,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A checked policy: `max_attempts` total attempts, exponential
    /// backoff from `base_delay` capped at `max_delay`, plus up to
    /// `jitter` ticks of deterministic jitter per retry.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0` (a policy that never even tries
    /// turns every operation into a silent no-op) or if `max_delay <
    /// base_delay` (the cap would silently truncate the very first
    /// backoff — like the `RateLimiter` zero-window case, a
    /// misconfiguration must fail loudly at construction, not be
    /// reinterpreted at use).
    pub fn new(max_attempts: u32, base_delay: u64, max_delay: u64, jitter: u64) -> RetryPolicy {
        assert!(max_attempts > 0, "retry policy needs at least 1 attempt");
        assert!(
            max_delay >= base_delay,
            "max_delay must be at least base_delay"
        );
        RetryPolicy {
            max_attempts,
            base_delay,
            max_delay,
            jitter,
            jitter_seed: 0,
        }
    }

    /// The same policy with `seed` folded into every jitter draw (see
    /// [`RetryPolicy::jitter_seed`]).
    pub fn with_jitter_seed(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = seed;
        self
    }

    /// Virtual delay before retry number `retry` (0-based: the delay
    /// between the first failure and the second attempt is `backoff(0,
    /// …)`). `token` seeds the jitter so concurrent retriers decorrelate
    /// while staying deterministic; `jitter_seed` decorrelates whole
    /// deployments retrying the *same* token.
    pub fn backoff(&self, retry: u32, token: u64) -> u64 {
        let exp = self
            .base_delay
            .saturating_mul(1u64 << retry.min(20))
            .min(self.max_delay);
        let jitter = if self.jitter == 0 {
            0
        } else {
            // `mix` the seed before XOR-ing so seed and token cannot
            // cancel each other bit-for-bit; the nested mix keeps the
            // draw uniform over `0..=jitter`.
            mix(token ^ DOMAIN_JITTER ^ retry as u64 ^ mix(self.jitter_seed)) % (self.jitter + 1)
        };
        exp + jitter
    }
}

/// A shared monotonic virtual clock, advanced instead of slept on.
///
/// Thread-safe: scan workers advance it concurrently; the total after a
/// run is the sum of all advances and therefore deterministic even under
/// parallel scans.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks: AtomicU64,
}

impl VirtualClock {
    /// A clock at tick zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Advances by `ticks`; returns the new time.
    pub fn advance(&self, ticks: u64) -> u64 {
        self.ticks.fetch_add(ticks, Ordering::Relaxed) + ticks
    }
}

/// A [`VirtualClock`] is a telemetry [`apks_telemetry::Clock`]: spans
/// recorded during chaos runs charge virtual ticks, so two same-seed
/// runs produce byte-identical metric snapshots.
impl apks_telemetry::Clock for VirtualClock {
    fn now_ticks(&self) -> u64 {
        self.now()
    }
}

/// Everything a resilient operation needs: the schedule, the retry
/// budget, and the clock to charge delays to.
#[derive(Clone, Copy, Debug)]
pub struct FaultContext<'a> {
    /// The fault schedule consulted before each attempt.
    pub plan: &'a FaultPlan,
    /// The retry/backoff budget.
    pub policy: &'a RetryPolicy,
    /// The clock backoff delays are charged to.
    pub clock: &'a VirtualClock,
}

impl<'a> FaultContext<'a> {
    /// Bundles the three pieces.
    pub fn new(
        plan: &'a FaultPlan,
        policy: &'a RetryPolicy,
        clock: &'a VirtualClock,
    ) -> FaultContext<'a> {
        FaultContext {
            plan,
            policy,
            clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(config: FaultConfig) -> FaultPlan {
        FaultPlan::new(config)
    }

    #[test]
    fn decisions_are_pure_functions() {
        let p = plan(FaultConfig {
            seed: 7,
            proxy_timeout_permille: 300,
            transform_error_permille: 200,
            drop_upload_permille: 150,
            poisoned_doc_permille: 100,
            flaky_doc_permille: 100,
            slow_doc_permille: 100,
            ..FaultConfig::default()
        });
        for op in 0..200u64 {
            for attempt in 0..4u32 {
                assert_eq!(
                    p.proxy_fault("proxy-0", op, attempt),
                    p.proxy_fault("proxy-0", op, attempt)
                );
                assert_eq!(p.upload_dropped(op, attempt), p.upload_dropped(op, attempt));
            }
            assert_eq!(p.doc_fault(op), p.doc_fault(op));
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let p = plan(FaultConfig {
            seed: 42,
            proxy_timeout_permille: 250,
            ..FaultConfig::default()
        });
        let faulted = (0..4000u64)
            .filter(|&op| p.proxy_fault("proxy-0", op, 0).is_some())
            .count();
        // 25% ± generous slack
        assert!((700..1300).contains(&faulted), "got {faulted}");
    }

    #[test]
    fn transient_faults_clear_within_burst() {
        let p = plan(FaultConfig {
            seed: 3,
            transform_error_permille: 1000,
            max_fault_burst: 3,
            ..FaultConfig::default()
        });
        for op in 0..100u64 {
            // every op faults at attempt 0 (rate 1000‰)…
            assert!(p.proxy_fault("px", op, 0).is_some());
            // …and clears by attempt max_fault_burst
            assert!(p.proxy_fault("px", op, 3).is_none());
        }
    }

    #[test]
    fn sites_get_independent_streams() {
        let p = plan(FaultConfig {
            seed: 9,
            proxy_timeout_permille: 500,
            ..FaultConfig::default()
        });
        let a: Vec<bool> = (0..256)
            .map(|op| p.proxy_fault("proxy-a", op, 0).is_some())
            .collect();
        let b: Vec<bool> = (0..256)
            .map(|op| p.proxy_fault("proxy-b", op, 0).is_some())
            .collect();
        assert_ne!(a, b, "distinct proxies must not share a fault stream");
    }

    #[test]
    fn seeds_change_the_schedule() {
        let mk = |seed| {
            let p = plan(FaultConfig {
                seed,
                poisoned_doc_permille: 500,
                ..FaultConfig::default()
            });
            (0..256u64)
                .map(|d| p.doc_fault(d).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn backoff_is_capped_and_jittered_deterministically() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay: 2,
            max_delay: 16,
            jitter: 3,
            jitter_seed: 0,
        };
        let mut prev_exp = 0;
        for retry in 0..6 {
            let d = policy.backoff(retry, 99);
            assert_eq!(d, policy.backoff(retry, 99), "deterministic");
            let exp = (2u64 << retry).min(16);
            assert!(d >= exp.min(16).max(prev_exp.min(16)));
            assert!(d <= 16 + 3, "capped: {d}");
            prev_exp = exp;
        }
        // different tokens decorrelate jitter
        let spread: std::collections::HashSet<u64> =
            (0..32).map(|t| policy.backoff(0, t)).collect();
        assert!(spread.len() > 1);
    }

    #[test]
    fn jitter_seed_decorrelates_same_token_retriers() {
        // A fleet of clients retrying the same operation (same token)
        // must not back off in lockstep: distinct jitter seeds have to
        // produce distinct delay schedules for at least some retries.
        let base = RetryPolicy {
            jitter: 7,
            ..RetryPolicy::default()
        };
        let schedule = |seed: u64| -> Vec<u64> {
            let p = base.clone().with_jitter_seed(seed);
            (0..base.max_attempts - 1)
                .map(|r| p.backoff(r, 42))
                .collect()
        };
        let spread: std::collections::HashSet<Vec<u64>> = (0..16).map(schedule).collect();
        assert!(
            spread.len() > 1,
            "16 seeds produced a single synchronized schedule"
        );
        // …while staying deterministic per seed
        assert_eq!(schedule(5), schedule(5));
    }

    #[test]
    fn jitter_window_is_pinned_for_every_seed() {
        // Boundary: for any (seed, token, retry) the delay stays inside
        // [exp, exp + jitter] where exp is the capped exponential term.
        let policy = RetryPolicy::new(6, 2, 16, 5).with_jitter_seed(0xfeed);
        for seed in [0u64, 1, 0xfeed, u64::MAX] {
            let p = policy.clone().with_jitter_seed(seed);
            for retry in 0..8u32 {
                let exp = 2u64.saturating_mul(1 << retry.min(20)).min(16);
                for token in 0..64u64 {
                    let d = p.backoff(retry, token);
                    assert!(d >= exp, "below window: {d} < {exp}");
                    assert!(d <= exp + 5, "above window: {d} > {}", exp + 5);
                }
            }
        }
        // zero jitter stays exactly exponential regardless of seed
        let flat = RetryPolicy::new(4, 2, 16, 0).with_jitter_seed(99);
        assert_eq!(flat.backoff(1, 7), 4);
    }

    #[test]
    fn checked_retry_policy_accepts_valid_configs() {
        let p = RetryPolicy::new(4, 2, 16, 3);
        assert_eq!(p, RetryPolicy::default());
        // base == max is a legal (constant-backoff) configuration
        let flat = RetryPolicy::new(1, 8, 8, 0);
        assert_eq!(flat.backoff(5, 0), 8);
    }

    #[test]
    #[should_panic(expected = "retry policy needs at least 1 attempt")]
    fn checked_retry_policy_rejects_zero_attempts() {
        // regression: `max_attempts == 0` used to construct fine and
        // silently turned every retried operation into a no-op that
        // never ran even once
        RetryPolicy::new(0, 2, 16, 3);
    }

    #[test]
    #[should_panic(expected = "max_delay must be at least base_delay")]
    fn checked_retry_policy_rejects_inverted_delay_bounds() {
        // regression: a cap below the base silently truncated the very
        // first backoff instead of failing the misconfiguration
        RetryPolicy::new(4, 16, 2, 3);
    }

    #[test]
    fn virtual_clock_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance(7), 12);
        assert_eq!(c.now(), 12);
    }
}
