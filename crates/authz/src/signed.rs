//! Authority-signed capabilities.
//!
//! §III: *"a TA/LTA can issue an identity-based signature on each
//! capability it generated/delegated. The server has to verify that a
//! received capability has a valid signature from a registered LTA before
//! performing search for a user."*

use crate::ibs::{IbsPublicParams, IbsSignature};
use apks_core::Capability;
use apks_curve::CurveParams;
use apks_math::encode::{DecodeError, Reader, Writer};

/// A capability together with its issuing authority's signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedCapability {
    /// The (finalized) capability.
    pub capability: Capability,
    /// Identity of the issuing TA/LTA (e.g. `"lta:hospital-a"`).
    pub issuer: String,
    /// IBS over the capability bytes.
    pub signature: IbsSignature,
}

impl SignedCapability {
    /// The byte string the signature covers.
    pub fn signed_bytes(params: &CurveParams, capability: &Capability, issuer: &str) -> Vec<u8> {
        let mut w = Writer::new();
        w.string(issuer);
        capability.encode(params, &mut w);
        w.finish()
    }

    /// Verifies the signature against the IBS public parameters.
    pub fn verify(&self, params: &CurveParams, ibs: &IbsPublicParams) -> bool {
        let msg = Self::signed_bytes(params, &self.capability, &self.issuer);
        self.signature.verify(params, ibs, &self.issuer, &msg)
    }

    /// Canonical encoding.
    pub fn encode(&self, params: &CurveParams, w: &mut Writer) {
        w.string(&self.issuer);
        self.capability.encode(params, w);
        self.signature.encode(params, w);
    }

    /// Encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        4 + self.issuer.len() + self.capability.encoded_size() + IbsSignature::encoded_size()
    }

    /// Decodes a signed capability.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed bytes.
    pub fn decode(params: &CurveParams, r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let issuer = r.string()?;
        let capability = Capability::decode(params, r)?;
        let signature = IbsSignature::decode(params, r)?;
        Ok(SignedCapability {
            capability,
            issuer,
            signature,
        })
    }
}
