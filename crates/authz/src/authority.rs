//! The TA / LTA hierarchy (§III, Fig. 2).
//!
//! The [`TrustedAuthority`] runs system setup, provisions second-level
//! [`Lta`]s with base capabilities and IBS signing keys, and can then stay
//! offline. Each LTA serves capability requests from its local domain:
//! attribute check → `DelegateCap` from its base capability → finalize →
//! sign. LTAs can also spawn *sub*-LTAs, inheriting their restrictions —
//! the `i`-th-level delegation of the paper.

use crate::directory::{AttributeDirectory, EligibilityRules};
use crate::ibs::{IbsAuthority, IbsPublicParams, UserSignKey};
use crate::signed::SignedCapability;
use apks_core::{
    ApksError, ApksMasterKey, ApksPublicKey, ApksSystem, Capability, Query, QueryPolicy,
};
use core::fmt;
use rand::Rng;

/// Authorization-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthzError {
    /// The requester failed the attribute/eligibility check.
    NotEligible {
        /// The fields that failed the check.
        fields: Vec<String>,
    },
    /// The underlying APKS operation failed.
    Apks(ApksError),
}

impl fmt::Display for AuthzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthzError::NotEligible { fields } => {
                write!(
                    f,
                    "requester not eligible for fields: {}",
                    fields.join(", ")
                )
            }
            AuthzError::Apks(e) => write!(f, "apks error: {e}"),
        }
    }
}

impl std::error::Error for AuthzError {}

impl From<ApksError> for AuthzError {
    fn from(e: ApksError) -> Self {
        AuthzError::Apks(e)
    }
}

/// The (root) trusted authority.
pub struct TrustedAuthority {
    system: ApksSystem,
    pk: ApksPublicKey,
    msk: ApksMasterKey,
    ibs: IbsAuthority,
    registered_ltas: Vec<String>,
}

impl TrustedAuthority {
    /// Runs `Setup` and creates the TA.
    pub fn setup<R: Rng + ?Sized>(system: ApksSystem, rng: &mut R) -> TrustedAuthority {
        let (pk, msk) = system.setup(rng);
        Self::from_parts(system, pk, msk, rng)
    }

    /// Builds a TA around existing keys — e.g. an APKS⁺ deployment whose
    /// `setup_plus` ran separately (the blinding stays with the proxies),
    /// or keys reloaded from a persisted deployment.
    pub fn from_parts<R: Rng + ?Sized>(
        system: ApksSystem,
        pk: ApksPublicKey,
        msk: ApksMasterKey,
        rng: &mut R,
    ) -> TrustedAuthority {
        let ibs = IbsAuthority::new(system.params().clone(), rng);
        TrustedAuthority {
            system,
            pk,
            msk,
            ibs,
            registered_ltas: Vec::new(),
        }
    }

    /// The public key every owner/user/server needs.
    pub fn public_key(&self) -> &ApksPublicKey {
        &self.pk
    }

    /// The IBS public parameters the server verifies against.
    pub fn ibs_params(&self) -> &IbsPublicParams {
        self.ibs.public_params()
    }

    /// The APKS system context.
    pub fn system(&self) -> &ApksSystem {
        &self.system
    }

    /// Identities of every authority registered so far (the server's
    /// whitelist).
    pub fn registered_ltas(&self) -> &[String] {
        &self.registered_ltas
    }

    /// Provisions a second-level LTA: issues its base capability for
    /// `base_query` (the domain restriction, e.g.
    /// `provider = "hospital-a"`), its IBS signing key, its directory and
    /// rules.
    ///
    /// # Errors
    ///
    /// Fails if the base query is invalid under the schema.
    pub fn register_lta<R: Rng + ?Sized>(
        &mut self,
        id: impl Into<String>,
        base_query: &Query,
        directory: AttributeDirectory,
        rules: EligibilityRules,
        policy: QueryPolicy,
        rng: &mut R,
    ) -> Result<Lta, AuthzError> {
        let id = id.into();
        let base = self.system.gen_cap(
            &self.pk,
            &self.msk,
            base_query,
            &QueryPolicy::permissive(),
            rng,
        )?;
        let sign_key = self.ibs.extract(&id);
        self.registered_ltas.push(id.clone());
        Ok(Lta {
            id,
            base,
            sign_key,
            directory,
            rules,
            policy,
        })
    }

    /// Directly issues a signed capability (the TA acting as an authority
    /// of last resort, e.g. for medical researchers vetted centrally).
    ///
    /// # Errors
    ///
    /// Fails if the query is invalid or violates `policy`.
    pub fn issue_capability<R: Rng + ?Sized>(
        &self,
        query: &Query,
        policy: &QueryPolicy,
        rng: &mut R,
    ) -> Result<SignedCapability, AuthzError> {
        let cap = self
            .system
            .gen_cap(&self.pk, &self.msk, query, policy, rng)?
            .finalize();
        Ok(self.sign_as("ta", cap, rng))
    }

    fn sign_as<R: Rng + ?Sized>(
        &self,
        issuer: &str,
        cap: Capability,
        rng: &mut R,
    ) -> SignedCapability {
        let key = self.ibs.extract(issuer);
        let msg = SignedCapability::signed_bytes(self.system.params(), &cap, issuer);
        let signature = key.sign(self.system.params(), &msg, rng);
        SignedCapability {
            capability: cap,
            issuer: issuer.to_string(),
            signature,
        }
    }
}

/// A local trusted authority.
pub struct Lta {
    id: String,
    base: Capability,
    sign_key: UserSignKey,
    /// Attribute database for the local domain.
    pub directory: AttributeDirectory,
    /// Per-field eligibility rules.
    pub rules: EligibilityRules,
    /// Query policy enforced on every request.
    pub policy: QueryPolicy,
}

impl Lta {
    /// This LTA's identity.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Serves a user's capability request: attribute check, delegation
    /// from the base capability (inheriting this LTA's restrictions),
    /// finalization, and signing.
    ///
    /// # Errors
    ///
    /// Fails if the user is not eligible, the query is invalid, or the
    /// policy rejects it.
    pub fn request_capability<R: Rng + ?Sized>(
        &self,
        system: &ApksSystem,
        pk: &ApksPublicKey,
        user: &str,
        query: &Query,
        rng: &mut R,
    ) -> Result<SignedCapability, AuthzError> {
        self.directory
            .check_query(user, query, &self.rules)
            .map_err(|fields| AuthzError::NotEligible { fields })?;
        let converted = query.convert(system.schema())?;
        self.policy.check(&converted)?;
        let cap = system.delegate_cap(pk, &self.base, query, rng)?.finalize();
        let msg = SignedCapability::signed_bytes(system.params(), &cap, &self.id);
        let signature = self.sign_key.sign(system.params(), &msg, rng);
        Ok(SignedCapability {
            capability: cap,
            issuer: self.id.clone(),
            signature,
        })
    }

    /// Spawns a sub-LTA whose base capability further restricts this one
    /// by `sub_query` (the `i`-th-level delegation of Fig. 2). The sub-LTA
    /// signs under its own identity, which the parent must register with
    /// the TA out of band.
    ///
    /// # Errors
    ///
    /// Fails if `sub_query` is invalid under the schema.
    #[allow(clippy::too_many_arguments)] // provisioning takes the full domain config
    pub fn spawn_sub_lta<R: Rng + ?Sized>(
        &self,
        system: &ApksSystem,
        pk: &ApksPublicKey,
        id: impl Into<String>,
        sub_query: &Query,
        sign_key: UserSignKey,
        directory: AttributeDirectory,
        rules: EligibilityRules,
        policy: QueryPolicy,
        rng: &mut R,
    ) -> Result<Lta, AuthzError> {
        let base = system.delegate_cap(pk, &self.base, sub_query, rng)?;
        Ok(Lta {
            id: id.into(),
            base,
            sign_key,
            directory,
            rules,
            policy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::Eligibility;
    use apks_core::{FieldValue, Record, Schema};
    use apks_curve::CurveParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn system() -> ApksSystem {
        let schema = Schema::builder()
            .flat_field("provider", 1)
            .flat_field("illness", 2)
            .flat_field("sex", 1)
            .build()
            .unwrap();
        ApksSystem::new(CurveParams::fast(), schema)
    }

    fn record(provider: &str, illness: &str, sex: &str) -> Record {
        Record::new(vec![
            FieldValue::text(provider),
            FieldValue::text(illness),
            FieldValue::text(sex),
        ])
    }

    #[test]
    fn full_authorization_flow() {
        let sys = system();
        let mut rng = StdRng::seed_from_u64(700);
        let mut ta = TrustedAuthority::setup(sys, &mut rng);
        let sys = ta.system().clone();
        let pk = ta.public_key().clone();

        let mut dir = AttributeDirectory::new();
        dir.register_user(
            "alice",
            [
                ("illness", FieldValue::text("diabetes")),
                ("sex", FieldValue::text("female")),
            ],
        );
        let rules = EligibilityRules::with_default(Eligibility::OwnsValue)
            .set("provider", Eligibility::AnyValue);
        let lta = ta
            .register_lta(
                "lta:hospital-a",
                &Query::new().equals("provider", "hospital-a"),
                dir,
                rules,
                QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();

        // Alice asks to match patients with her own illness.
        let signed = lta
            .request_capability(
                &sys,
                &pk,
                "alice",
                &Query::new().equals("illness", "diabetes"),
                &mut rng,
            )
            .unwrap();
        assert!(signed.verify(sys.params(), ta.ibs_params()));
        assert!(
            !signed.capability.can_delegate(),
            "finalized for the server"
        );

        // The capability inherits the LTA's provider restriction.
        let in_domain = sys
            .gen_index(&pk, &record("hospital-a", "diabetes", "female"), &mut rng)
            .unwrap();
        let out_domain = sys
            .gen_index(&pk, &record("hospital-b", "diabetes", "female"), &mut rng)
            .unwrap();
        let wrong_illness = sys
            .gen_index(&pk, &record("hospital-a", "flu", "female"), &mut rng)
            .unwrap();
        assert!(sys.search(&pk, &signed.capability, &in_domain).unwrap());
        assert!(!sys.search(&pk, &signed.capability, &out_domain).unwrap());
        assert!(!sys.search(&pk, &signed.capability, &wrong_illness).unwrap());
    }

    #[test]
    fn ineligible_request_rejected() {
        let sys = system();
        let mut rng = StdRng::seed_from_u64(701);
        let mut ta = TrustedAuthority::setup(sys, &mut rng);
        let sys = ta.system().clone();
        let pk = ta.public_key().clone();
        let mut dir = AttributeDirectory::new();
        dir.register_user("bob", [("illness", FieldValue::text("flu"))]);
        let lta = ta
            .register_lta(
                "lta:x",
                &Query::new().equals("provider", "hospital-a"),
                dir,
                EligibilityRules::with_default(Eligibility::OwnsValue),
                QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        let err = lta
            .request_capability(
                &sys,
                &pk,
                "bob",
                &Query::new().equals("illness", "diabetes"),
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, AuthzError::NotEligible { .. }));
    }

    #[test]
    fn tampered_capability_fails_verification() {
        let sys = system();
        let mut rng = StdRng::seed_from_u64(702);
        let ta = TrustedAuthority::setup(sys, &mut rng);
        let sys = ta.system().clone();
        let signed = ta
            .issue_capability(
                &Query::new().equals("sex", "male"),
                &QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        assert!(signed.verify(sys.params(), ta.ibs_params()));
        // claim a different issuer
        let mut forged = signed.clone();
        forged.issuer = "lta:evil".into();
        assert!(!forged.verify(sys.params(), ta.ibs_params()));
    }

    #[test]
    fn sub_lta_inherits_restrictions() {
        let sys = system();
        let mut rng = StdRng::seed_from_u64(703);
        let mut ta = TrustedAuthority::setup(sys, &mut rng);
        let sys = ta.system().clone();
        let pk = ta.public_key().clone();
        let lta = ta
            .register_lta(
                "lta:hospital-a",
                &Query::new().equals("provider", "hospital-a"),
                AttributeDirectory::new(),
                EligibilityRules::with_default(Eligibility::AnyValue),
                QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        // department-level sub-LTA: restricted to illness = flu
        let mut dept_dir = AttributeDirectory::new();
        dept_dir.register_user("carol", [("sex", FieldValue::text("female"))]);
        let dept = lta
            .spawn_sub_lta(
                &sys,
                &pk,
                "lta:hospital-a:flu-clinic",
                &Query::new().equals("illness", "flu"),
                // sub-LTA IBS key issued by the TA's IBS authority
                crate::ibs::IbsAuthority::new(sys.params().clone(), &mut rng)
                    .extract("lta:hospital-a:flu-clinic"),
                dept_dir,
                EligibilityRules::with_default(Eligibility::AnyValue),
                QueryPolicy::default(),
                &mut rng,
            )
            .unwrap();
        let cap = dept
            .request_capability(
                &sys,
                &pk,
                "carol",
                &Query::new().equals("sex", "female"),
                &mut rng,
            )
            .unwrap();
        // matches only hospital-a AND flu AND female
        let yes = sys
            .gen_index(&pk, &record("hospital-a", "flu", "female"), &mut rng)
            .unwrap();
        let no_provider = sys
            .gen_index(&pk, &record("hospital-b", "flu", "female"), &mut rng)
            .unwrap();
        let no_illness = sys
            .gen_index(&pk, &record("hospital-a", "diabetes", "female"), &mut rng)
            .unwrap();
        assert!(sys.search(&pk, &cap.capability, &yes).unwrap());
        assert!(!sys.search(&pk, &cap.capability, &no_provider).unwrap());
        assert!(!sys.search(&pk, &cap.capability, &no_illness).unwrap());
    }
}
