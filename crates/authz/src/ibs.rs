//! Cha–Cheon identity-based signatures over the type-A pairing.
//!
//! The paper has every TA/LTA prove its authorization by attaching an
//! identity-based signature \[31\] to each capability it issues; the server
//! verifies the signature against the *identity string* of a registered
//! authority — no per-authority certificate distribution needed.
//!
//! Scheme (Cha–Cheon, PKC 2003):
//!
//! ```text
//! Setup:    msk s ∈ F_q,  P_pub = s·G
//! Extract:  D_id = s·Q_id            where Q_id = H₁(id) ∈ G
//! Sign:     r ∈ F_q, U = r·Q_id, h = H₂(m, U), V = (r + h)·D_id
//! Verify:   e(V, G) == e(U + h·Q_id, P_pub)
//! ```

use apks_curve::pairing::pairing_fp2;
use apks_curve::{CurveParams, G1Affine};
use apks_math::encode::{DecodeError, Reader, Writer};
use apks_math::hash::hash_to_fr;
use apks_math::Fr;
use rand::Rng;
use std::sync::Arc;

/// Public parameters of the IBS: the master public key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IbsPublicParams {
    /// `P_pub = s·G`.
    pub p_pub: G1Affine,
}

/// The IBS authority (holds the master signing secret).
#[derive(Clone, Debug)]
pub struct IbsAuthority {
    params: Arc<CurveParams>,
    msk: Fr,
    public: IbsPublicParams,
}

/// An identity's signing key `D_id = s·Q_id`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserSignKey {
    /// The identity string this key signs for.
    pub id: String,
    /// `D_id`.
    pub key: G1Affine,
}

/// A Cha–Cheon signature `(U, V)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IbsSignature {
    /// `U = r·Q_id`.
    pub u: G1Affine,
    /// `V = (r + h)·D_id`.
    pub v: G1Affine,
}

/// Hashes an identity onto the curve.
fn q_id(params: &CurveParams, id: &str) -> G1Affine {
    params.hash_to_point("apks:ibs:id", id.as_bytes())
}

/// `H₂(m, U) ∈ F_q`.
fn challenge(params: &CurveParams, msg: &[u8], u: &G1Affine) -> Fr {
    let mut data = u.to_bytes(params.fp());
    data.extend_from_slice(msg);
    hash_to_fr("apks:ibs:challenge", &data)
}

impl IbsAuthority {
    /// Creates an authority with a fresh master secret.
    pub fn new<R: Rng + ?Sized>(params: Arc<CurveParams>, rng: &mut R) -> IbsAuthority {
        let msk = Fr::random_nonzero(rng);
        let p_pub = params.mul_generator(msk).to_affine(params.fp());
        IbsAuthority {
            params,
            msk,
            public: IbsPublicParams { p_pub },
        }
    }

    /// The public parameters to distribute.
    pub fn public_params(&self) -> &IbsPublicParams {
        &self.public
    }

    /// `Extract`: issues the signing key for an identity.
    pub fn extract(&self, id: &str) -> UserSignKey {
        let q = q_id(&self.params, id);
        UserSignKey {
            id: id.to_string(),
            key: self.params.mul(&q, self.msk),
        }
    }
}

impl UserSignKey {
    /// Signs a message.
    pub fn sign<R: Rng + ?Sized>(
        &self,
        params: &CurveParams,
        msg: &[u8],
        rng: &mut R,
    ) -> IbsSignature {
        let q = q_id(params, &self.id);
        let r = Fr::random_nonzero(rng);
        let u = params.mul(&q, r);
        let h = challenge(params, msg, &u);
        let v = params.mul(&self.key, r + h);
        IbsSignature { u, v }
    }
}

impl IbsSignature {
    /// Verifies the signature of `id` over `msg`.
    pub fn verify(
        &self,
        params: &CurveParams,
        public: &IbsPublicParams,
        id: &str,
        msg: &[u8],
    ) -> bool {
        let fp = params.fp();
        if !self.u.is_on_curve(fp) || !self.v.is_on_curve(fp) {
            return false;
        }
        let q = q_id(params, id);
        let h = challenge(params, msg, &self.u);
        let hq = params.mul(&q, h);
        let lhs = pairing_fp2(params, &self.v, &params.generator());
        let sum = self.u.to_projective(fp).add_mixed(fp, &hq).to_affine(fp);
        let rhs = pairing_fp2(params, &sum, &public.p_pub);
        lhs == rhs
    }

    /// Canonical encoding.
    pub fn encode(&self, params: &CurveParams, w: &mut Writer) {
        w.bytes(&self.u.to_bytes(params.fp()));
        w.bytes(&self.v.to_bytes(params.fp()));
    }

    /// Encoded size in bytes (two compressed points).
    pub fn encoded_size() -> usize {
        2 * G1Affine::ENCODED_LEN
    }

    /// Decodes a signature.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed points.
    pub fn decode(params: &CurveParams, r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = G1Affine::ENCODED_LEN;
        let u = G1Affine::from_bytes(params.fp(), r.bytes(len)?)
            .ok_or(DecodeError::Invalid("signature point U"))?;
        let v = G1Affine::from_bytes(params.fp(), r.bytes(len)?)
            .ok_or(DecodeError::Invalid("signature point V"))?;
        Ok(IbsSignature { u, v })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sign_verify_roundtrip() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(600);
        let authority = IbsAuthority::new(params.clone(), &mut rng);
        let key = authority.extract("lta:hospital-a");
        let sig = key.sign(&params, b"capability bytes", &mut rng);
        assert!(sig.verify(
            &params,
            authority.public_params(),
            "lta:hospital-a",
            b"capability bytes"
        ));
    }

    #[test]
    fn wrong_message_rejected() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(601);
        let authority = IbsAuthority::new(params.clone(), &mut rng);
        let key = authority.extract("lta:a");
        let sig = key.sign(&params, b"msg", &mut rng);
        assert!(!sig.verify(&params, authority.public_params(), "lta:a", b"other"));
    }

    #[test]
    fn wrong_identity_rejected() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(602);
        let authority = IbsAuthority::new(params.clone(), &mut rng);
        let key = authority.extract("lta:a");
        let sig = key.sign(&params, b"msg", &mut rng);
        assert!(!sig.verify(&params, authority.public_params(), "lta:b", b"msg"));
    }

    #[test]
    fn forged_key_rejected() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(603);
        let authority = IbsAuthority::new(params.clone(), &mut rng);
        // adversary self-issues a key for an identity it does not own
        let fake = UserSignKey {
            id: "lta:victim".into(),
            key: params.mul(&params.generator(), Fr::random(&mut rng)),
        };
        let sig = fake.sign(&params, b"msg", &mut rng);
        assert!(!sig.verify(&params, authority.public_params(), "lta:victim", b"msg"));
    }

    #[test]
    fn encoding_roundtrip() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(604);
        let authority = IbsAuthority::new(params.clone(), &mut rng);
        let sig = authority.extract("x").sign(&params, b"m", &mut rng);
        let mut w = Writer::new();
        sig.encode(&params, &mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        let sig2 = IbsSignature::decode(&params, &mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(sig, sig2);
    }

    #[test]
    fn distinct_authorities_do_not_cross_verify() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(605);
        let a1 = IbsAuthority::new(params.clone(), &mut rng);
        let a2 = IbsAuthority::new(params.clone(), &mut rng);
        let sig = a1.extract("id").sign(&params, b"m", &mut rng);
        assert!(!sig.verify(&params, a2.public_params(), "id", b"m"));
    }
}
