//! Attribute directories and eligibility rules.
//!
//! §III: *"the LTA checks whether a user either actually possesses the
//! attribute value set `W` underlying `Q̂`, or is eligible for those
//! values. One way to achieve this is to maintain a database of attribute
//! values for all users in the LTA's local domain."* This module is that
//! database plus the per-field eligibility policy.

use apks_core::{Condition, FieldValue, Query};
use std::collections::{HashMap, HashSet};

/// How a field may be queried by a user.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Eligibility {
    /// The user may only query values they *possess* (e.g. a patient may
    /// only search for their own illness — the patient-matching rule).
    #[default]
    OwnsValue,
    /// Any value may be queried (e.g. a physician searching the disease
    /// they treat, or demographic fields).
    AnyValue,
    /// The field may not be queried at all through this LTA.
    Forbidden,
}

/// Per-field eligibility rules with a default.
#[derive(Clone, Debug, Default)]
pub struct EligibilityRules {
    per_field: HashMap<String, Eligibility>,
    default: Eligibility,
}

impl EligibilityRules {
    /// Rules where every field defaults to the given eligibility.
    pub fn with_default(default: Eligibility) -> Self {
        EligibilityRules {
            per_field: HashMap::new(),
            default,
        }
    }

    /// Sets one field's rule.
    pub fn set(mut self, field: impl Into<String>, rule: Eligibility) -> Self {
        self.per_field.insert(field.into(), rule);
        self
    }

    /// The rule applying to a field.
    pub fn rule(&self, field: &str) -> Eligibility {
        self.per_field.get(field).copied().unwrap_or(self.default)
    }
}

/// A user's registered attribute values, one per field.
pub type UserAttributes = HashMap<String, FieldValue>;

/// The LTA's user database.
#[derive(Clone, Debug, Default)]
pub struct AttributeDirectory {
    users: HashMap<String, UserAttributes>,
}

impl AttributeDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a user's attributes.
    pub fn register_user(
        &mut self,
        user: impl Into<String>,
        attributes: impl IntoIterator<Item = (impl Into<String>, FieldValue)>,
    ) {
        self.users.insert(
            user.into(),
            attributes.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        );
    }

    /// Removes a user (local revocation of future capability requests).
    pub fn remove_user(&mut self, user: &str) -> bool {
        self.users.remove(user).is_some()
    }

    /// A user's attributes, if registered.
    pub fn attributes(&self, user: &str) -> Option<&UserAttributes> {
        self.users.get(user)
    }

    /// Checks a query against a user's attributes under the rules.
    /// Returns the set of offending fields (empty = authorized).
    pub fn check_query(
        &self,
        user: &str,
        query: &Query,
        rules: &EligibilityRules,
    ) -> Result<(), Vec<String>> {
        let Some(attrs) = self.users.get(user) else {
            return Err(vec!["<user not registered>".to_string()]);
        };
        let mut offending: HashSet<String> = HashSet::new();
        for cond in &query.conditions {
            let field = cond.field();
            match rules.rule(field) {
                Eligibility::AnyValue => {}
                Eligibility::Forbidden => {
                    offending.insert(field.to_string());
                }
                Eligibility::OwnsValue => {
                    let owned = attrs.get(field);
                    let ok = match (cond, owned) {
                        (_, None) => false,
                        (Condition::Equals { value, .. }, Some(v)) => value == v,
                        (Condition::OneOf { values, .. }, Some(v)) => values.contains(v),
                        (Condition::Range { lo, hi, .. }, Some(v)) => {
                            v.as_num().is_some_and(|n| *lo <= n && n <= *hi)
                        }
                    };
                    if !ok {
                        offending.insert(field.to_string());
                    }
                }
            }
        }
        if offending.is_empty() {
            Ok(())
        } else {
            let mut v: Vec<String> = offending.into_iter().collect();
            v.sort();
            Err(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directory() -> AttributeDirectory {
        let mut dir = AttributeDirectory::new();
        dir.register_user(
            "alice",
            [
                ("illness", FieldValue::text("diabetes")),
                ("age", FieldValue::num(25)),
                ("region", FieldValue::text("Boston")),
            ],
        );
        dir
    }

    #[test]
    fn owns_value_allows_matching_query() {
        let dir = directory();
        let rules = EligibilityRules::with_default(Eligibility::OwnsValue);
        let q = Query::new().equals("illness", "diabetes");
        assert!(dir.check_query("alice", &q, &rules).is_ok());
    }

    #[test]
    fn owns_value_rejects_other_values() {
        let dir = directory();
        let rules = EligibilityRules::with_default(Eligibility::OwnsValue);
        let q = Query::new().equals("illness", "cancer");
        assert_eq!(
            dir.check_query("alice", &q, &rules).unwrap_err(),
            vec!["illness".to_string()]
        );
    }

    #[test]
    fn range_ownership_checks_containment() {
        let dir = directory();
        let rules = EligibilityRules::with_default(Eligibility::OwnsValue);
        assert!(dir
            .check_query("alice", &Query::new().range("age", 20, 30), &rules)
            .is_ok());
        assert!(dir
            .check_query("alice", &Query::new().range("age", 30, 40), &rules)
            .is_err());
    }

    #[test]
    fn subset_ownership_checks_membership() {
        let dir = directory();
        let rules = EligibilityRules::with_default(Eligibility::OwnsValue);
        let yes = Query::new().one_of("region", ["Boston", "Worcester"]);
        let no = Query::new().one_of("region", ["Springfield", "Worcester"]);
        assert!(dir.check_query("alice", &yes, &rules).is_ok());
        assert!(dir.check_query("alice", &no, &rules).is_err());
    }

    #[test]
    fn any_value_and_forbidden_rules() {
        let dir = directory();
        let rules = EligibilityRules::with_default(Eligibility::OwnsValue)
            .set("illness", Eligibility::AnyValue)
            .set("region", Eligibility::Forbidden);
        assert!(dir
            .check_query("alice", &Query::new().equals("illness", "cancer"), &rules)
            .is_ok());
        assert!(dir
            .check_query("alice", &Query::new().equals("region", "Boston"), &rules)
            .is_err());
    }

    #[test]
    fn unregistered_user_rejected() {
        let dir = directory();
        let rules = EligibilityRules::with_default(Eligibility::AnyValue);
        assert!(dir
            .check_query("mallory", &Query::new().equals("age", 1), &rules)
            .is_err());
    }

    #[test]
    fn remove_user_revokes() {
        let mut dir = directory();
        assert!(dir.remove_user("alice"));
        assert!(!dir.remove_user("alice"));
        let rules = EligibilityRules::with_default(Eligibility::AnyValue);
        assert!(dir
            .check_query("alice", &Query::new().equals("age", 25), &rules)
            .is_err());
    }
}
