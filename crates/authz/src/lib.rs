//! The fine-grained search-authorization framework (§III of the paper).
//!
//! Owners delegate trust to a **trusted authority** (TA) and a tree of
//! **local trusted authorities** (LTAs). The TA runs `Setup`, hands each
//! second-level LTA a *base capability* restricting everything in its
//! local domain, and then stays (semi-)offline. Each LTA:
//!
//! * maintains an attribute directory for the users in its domain,
//! * authorizes capability requests by checking the requester *possesses*
//!   (or is *eligible for*) every attribute value in the query,
//! * derives the capability by `DelegateCap` from its own — so the LTA's
//!   restrictions are inherited automatically — and
//! * signs it with an **identity-based signature** so the cloud server can
//!   verify the issuing authority before searching.
//!
//! The IBS is Cha–Cheon over the same type-A pairing (the paper cites
//! Paterson–Schuldt \[31\]; see DESIGN.md §5 for the substitution note).

pub mod authority;
pub mod credential;
pub mod directory;
pub mod ibs;
pub mod signed;

pub use authority::{AuthzError, Lta, TrustedAuthority};
pub use credential::{check_query_with_credentials, issue_credential, AttributeCredential};
pub use directory::{AttributeDirectory, Eligibility, EligibilityRules};
pub use ibs::{IbsAuthority, IbsPublicParams, IbsSignature, UserSignKey};
pub use signed::SignedCapability;
