//! Attribute credentials — the §III alternative to a directory.
//!
//! *"Alternatively, the LTA can issue to each user in its domain a set of
//! credentials certifying the user's attribute values, and verifies those
//! credentials upon a request for capability."* A credential is an
//! identity-based signature by the issuing authority over
//! `(user, field, value, expiry)`; a stateless authority can then check a
//! capability request against presented credentials without any user
//! database.

use crate::directory::{Eligibility, EligibilityRules};
use crate::ibs::{IbsPublicParams, IbsSignature, UserSignKey};
use apks_core::{Condition, FieldValue, Query};
use apks_curve::CurveParams;
use apks_math::encode::{DecodeError, Reader, Writer};
use rand::Rng;

/// A signed claim that `user` holds `value` in `field` until `expires_at`
/// (epoch ticks; the caller supplies the clock).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributeCredential {
    /// The subject user.
    pub user: String,
    /// The attribute field.
    pub field: String,
    /// The certified value.
    pub value: FieldValue,
    /// Expiry tick (credential invalid strictly after this).
    pub expires_at: u64,
    /// Issuing authority identity.
    pub issuer: String,
    /// IBS over the claim.
    pub signature: IbsSignature,
}

fn claim_bytes(
    user: &str,
    field: &str,
    value: &FieldValue,
    expires_at: u64,
    issuer: &str,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.string("apks:credential:v1");
    w.string(user);
    w.string(field);
    w.string(&value.label());
    w.u8(matches!(value, FieldValue::Num(_)) as u8);
    w.u64(expires_at);
    w.string(issuer);
    w.finish()
}

/// Issues a credential (authority side).
pub fn issue_credential<R: Rng + ?Sized>(
    params: &CurveParams,
    sign_key: &UserSignKey,
    user: impl Into<String>,
    field: impl Into<String>,
    value: FieldValue,
    expires_at: u64,
    rng: &mut R,
) -> AttributeCredential {
    let user = user.into();
    let field = field.into();
    let issuer = sign_key.id.clone();
    let msg = claim_bytes(&user, &field, &value, expires_at, &issuer);
    let signature = sign_key.sign(params, &msg, rng);
    AttributeCredential {
        user,
        field,
        value,
        expires_at,
        issuer,
        signature,
    }
}

impl AttributeCredential {
    /// Verifies authenticity and freshness at time `now`.
    pub fn verify(&self, params: &CurveParams, ibs: &IbsPublicParams, now: u64) -> bool {
        if now > self.expires_at {
            return false;
        }
        let msg = claim_bytes(
            &self.user,
            &self.field,
            &self.value,
            self.expires_at,
            &self.issuer,
        );
        self.signature.verify(params, ibs, &self.issuer, &msg)
    }

    /// Canonical encoding.
    pub fn encode(&self, params: &CurveParams, w: &mut Writer) {
        w.string(&self.user);
        w.string(&self.field);
        w.string(&self.value.label());
        w.u8(matches!(self.value, FieldValue::Num(_)) as u8);
        w.u64(self.expires_at);
        w.string(&self.issuer);
        self.signature.encode(params, w);
    }

    /// Decodes a credential.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed bytes.
    pub fn decode(params: &CurveParams, r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let user = r.string()?;
        let field = r.string()?;
        let label = r.string()?;
        let is_num = r.u8()? == 1;
        let value = if is_num {
            FieldValue::Num(
                label
                    .parse()
                    .map_err(|_| DecodeError::Invalid("numeric credential value"))?,
            )
        } else {
            FieldValue::Text(label)
        };
        let expires_at = r.u64()?;
        let issuer = r.string()?;
        let signature = IbsSignature::decode(params, r)?;
        Ok(AttributeCredential {
            user,
            field,
            value,
            expires_at,
            issuer,
            signature,
        })
    }
}

/// Checks a query against *presented credentials* under eligibility
/// rules — the stateless counterpart of
/// [`crate::AttributeDirectory::check_query`]. Credentials must verify,
/// belong to `user`, and be issued by `trusted_issuer`.
///
/// Returns the offending fields on failure.
#[allow(clippy::too_many_arguments)] // the verifier's full context is explicit by design
pub fn check_query_with_credentials(
    params: &CurveParams,
    ibs: &IbsPublicParams,
    trusted_issuer: &str,
    user: &str,
    credentials: &[AttributeCredential],
    query: &Query,
    rules: &EligibilityRules,
    now: u64,
) -> Result<(), Vec<String>> {
    let valid: Vec<&AttributeCredential> = credentials
        .iter()
        .filter(|c| c.user == user && c.issuer == trusted_issuer && c.verify(params, ibs, now))
        .collect();
    let mut offending = Vec::new();
    for cond in &query.conditions {
        let field = cond.field();
        let ok = match rules.rule(field) {
            Eligibility::AnyValue => true,
            Eligibility::Forbidden => false,
            Eligibility::OwnsValue => valid.iter().any(|c| {
                c.field == field
                    && match cond {
                        Condition::Equals { value, .. } => value == &c.value,
                        Condition::OneOf { values, .. } => values.contains(&c.value),
                        Condition::Range { lo, hi, .. } => {
                            c.value.as_num().is_some_and(|n| *lo <= n && n <= *hi)
                        }
                    }
            }),
        };
        if !ok {
            offending.push(field.to_string());
        }
    }
    offending.sort();
    offending.dedup();
    if offending.is_empty() {
        Ok(())
    } else {
        Err(offending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ibs::IbsAuthority;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        std::sync::Arc<CurveParams>,
        IbsAuthority,
        UserSignKey,
        StdRng,
    ) {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(1500);
        let authority = IbsAuthority::new(params.clone(), &mut rng);
        let key = authority.extract("lta:hospital-a");
        (params, authority, key, rng)
    }

    #[test]
    fn credential_verifies_and_expires() {
        let (params, authority, key, mut rng) = setup();
        let cred = issue_credential(
            &params,
            &key,
            "alice",
            "illness",
            FieldValue::text("diabetes"),
            100,
            &mut rng,
        );
        assert!(cred.verify(&params, authority.public_params(), 50));
        assert!(cred.verify(&params, authority.public_params(), 100));
        assert!(
            !cred.verify(&params, authority.public_params(), 101),
            "expired"
        );
    }

    #[test]
    fn tampered_credential_rejected() {
        let (params, authority, key, mut rng) = setup();
        let mut cred = issue_credential(
            &params,
            &key,
            "alice",
            "illness",
            FieldValue::text("flu"),
            100,
            &mut rng,
        );
        cred.value = FieldValue::text("diabetes"); // upgrade attempt
        assert!(!cred.verify(&params, authority.public_params(), 50));
    }

    #[test]
    fn query_check_with_credentials() {
        let (params, authority, key, mut rng) = setup();
        let creds = vec![
            issue_credential(
                &params,
                &key,
                "alice",
                "illness",
                FieldValue::text("diabetes"),
                100,
                &mut rng,
            ),
            issue_credential(
                &params,
                &key,
                "alice",
                "age",
                FieldValue::num(25),
                100,
                &mut rng,
            ),
        ];
        let rules = EligibilityRules::with_default(Eligibility::OwnsValue);
        let ok = Query::new()
            .equals("illness", "diabetes")
            .range("age", 20, 30);
        assert!(check_query_with_credentials(
            &params,
            authority.public_params(),
            "lta:hospital-a",
            "alice",
            &creds,
            &ok,
            &rules,
            50
        )
        .is_ok());
        let bad = Query::new().equals("illness", "cancer");
        assert_eq!(
            check_query_with_credentials(
                &params,
                authority.public_params(),
                "lta:hospital-a",
                "alice",
                &creds,
                &bad,
                &rules,
                50
            )
            .unwrap_err(),
            vec!["illness".to_string()]
        );
        // someone else's credential does not help
        let mallory_q = Query::new().equals("illness", "diabetes");
        assert!(check_query_with_credentials(
            &params,
            authority.public_params(),
            "lta:hospital-a",
            "mallory",
            &creds,
            &mallory_q,
            &rules,
            50
        )
        .is_err());
        // expired credentials do not help
        assert!(check_query_with_credentials(
            &params,
            authority.public_params(),
            "lta:hospital-a",
            "alice",
            &creds,
            &ok,
            &rules,
            200
        )
        .is_err());
    }

    #[test]
    fn encoding_roundtrip() {
        let (params, _authority, key, mut rng) = setup();
        for value in [FieldValue::text("flu"), FieldValue::num(-7)] {
            let cred = issue_credential(&params, &key, "bob", "f", value, 9, &mut rng);
            let mut w = Writer::new();
            cred.encode(&params, &mut w);
            let buf = w.finish();
            let mut r = Reader::new(&buf);
            let back = AttributeCredential::decode(&params, &mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(cred, back);
        }
    }

    #[test]
    fn foreign_issuer_rejected() {
        let (params, authority, _key, mut rng) = setup();
        let other = IbsAuthority::new(params.clone(), &mut rng);
        let foreign_key = other.extract("lta:rogue");
        let cred = issue_credential(
            &params,
            &foreign_key,
            "alice",
            "illness",
            FieldValue::text("diabetes"),
            100,
            &mut rng,
        );
        // fails against the real authority's params
        assert!(!cred.verify(&params, authority.public_params(), 50));
        let rules = EligibilityRules::with_default(Eligibility::OwnsValue);
        let q = Query::new().equals("illness", "diabetes");
        assert!(check_query_with_credentials(
            &params,
            authority.public_params(),
            "lta:hospital-a",
            "alice",
            &[cred],
            &q,
            &rules,
            50
        )
        .is_err());
    }
}
