//! Slotted pages: the unit of storage and of corruption detection.
//!
//! Layout of one `page_size`-byte page:
//!
//! ```text
//! [ 0..32   sha256 over bytes 32..page_size      ]
//! [ 32..34  cell count, u16 LE                   ]
//! [ 34..    slot directory, one u16 LE per cell  ]  → grows forward
//! [ ...     free space (zeroed)                  ]
//! [ ...     cell bodies                          ]  ← grow backward
//! ```
//!
//! Slot `i` holds the byte offset of cell `i`; slot order is insertion
//! order, so a sequential scan of slots replays appends exactly. Free
//! space is zero-filled, which keeps page bytes a pure function of the
//! cells inserted — the same-seed byte-identity checks depend on it.

use apks_math::encode::Reader;
use apks_math::sha256::sha256;

/// Checksum (32) + cell count (2).
pub const PAGE_HEADER_LEN: usize = 34;

/// Smallest supported page: must hold the header plus one slot and a
/// minimal cell.
pub const MIN_PAGE_SIZE: usize = 256;

/// Largest supported page: slot offsets are u16.
pub const MAX_PAGE_SIZE: usize = 32768;

/// Cell kind tag for a document put.
const KIND_PUT: u8 = 1;
/// Cell kind tag for a deletion tombstone.
const KIND_TOMBSTONE: u8 = 2;

/// One record in a page: a document payload or its tombstone.
///
/// The payload is opaque to the store — the cloud layer puts encoded
/// `EncryptedIndex` bytes (or the sim's modeled stand-in) here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cell {
    /// A (new version of a) document.
    Put {
        /// Global document id.
        doc_id: u64,
        /// Opaque document bytes.
        payload: Vec<u8>,
    },
    /// The document was deleted; compaction drops it.
    Tombstone {
        /// Global document id.
        doc_id: u64,
    },
}

impl Cell {
    /// The document this cell is about.
    pub fn doc_id(&self) -> u64 {
        match self {
            Cell::Put { doc_id, .. } | Cell::Tombstone { doc_id } => *doc_id,
        }
    }

    /// Exact encoded size: kind + doc id, plus a length-prefixed
    /// payload for puts.
    pub fn encoded_size(&self) -> usize {
        match self {
            Cell::Put { payload, .. } => 1 + 8 + 4 + payload.len(),
            Cell::Tombstone { .. } => 1 + 8,
        }
    }

    fn encode_into(&self, out: &mut [u8]) {
        match self {
            Cell::Put { doc_id, payload } => {
                out[0] = KIND_PUT;
                out[1..9].copy_from_slice(&doc_id.to_le_bytes());
                out[9..13].copy_from_slice(&(payload.len() as u32).to_le_bytes());
                out[13..13 + payload.len()].copy_from_slice(payload);
            }
            Cell::Tombstone { doc_id } => {
                out[0] = KIND_TOMBSTONE;
                out[1..9].copy_from_slice(&doc_id.to_le_bytes());
            }
        }
    }

    /// Decodes one cell from the start of `bytes` (bytes after the
    /// cell belong to its neighbors and are ignored).
    fn decode(bytes: &[u8]) -> Result<Cell, &'static str> {
        let mut r = Reader::new(bytes);
        let kind = r.u8().map_err(|_| "cell truncated at kind")?;
        let doc_id = r.u64().map_err(|_| "cell truncated at doc id")?;
        match kind {
            KIND_PUT => {
                let payload = r
                    .var_bytes()
                    .map_err(|_| "cell payload exceeds page bounds")?;
                Ok(Cell::Put {
                    doc_id,
                    payload: payload.to_vec(),
                })
            }
            KIND_TOMBSTONE => Ok(Cell::Tombstone { doc_id }),
            _ => Err("unknown cell kind"),
        }
    }
}

/// Why a page failed to parse. The segment layer adds segment/page
/// coordinates when it maps this into [`crate::StoreError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageError {
    /// Stored checksum does not match the page contents.
    Checksum,
    /// Checksum passed but the slot directory or a cell is invalid —
    /// a writer bug, not bit rot.
    Structure(&'static str),
}

/// An in-construction slotted page.
#[derive(Clone, Debug)]
pub struct Page {
    buf: Vec<u8>,
    cell_count: usize,
    cell_start: usize,
}

impl Page {
    /// An empty page of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// If `page_size` is outside `[MIN_PAGE_SIZE, MAX_PAGE_SIZE]` —
    /// page size is validated at segment-open time, so reaching here
    /// with a bad size is a caller bug.
    pub fn new(page_size: usize) -> Page {
        assert!(
            (MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size),
            "page size {page_size} out of range"
        );
        Page {
            buf: vec![0u8; page_size],
            cell_count: 0,
            cell_start: page_size,
        }
    }

    /// Number of cells inserted so far.
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }

    /// True iff no cell has been inserted.
    pub fn is_empty(&self) -> bool {
        self.cell_count == 0
    }

    /// Largest single cell a page of `page_size` bytes can hold (one
    /// slot entry plus the body).
    pub fn max_cell_size(page_size: usize) -> usize {
        page_size - PAGE_HEADER_LEN - 2
    }

    /// Free bytes left for one more cell (slot entry included).
    pub fn free(&self) -> usize {
        self.cell_start - (PAGE_HEADER_LEN + 2 * self.cell_count)
    }

    /// Tries to insert `cell`; `false` means the page is full for a
    /// cell of this size (seal this page and retry on a fresh one).
    pub fn insert(&mut self, cell: &Cell) -> bool {
        let need = cell.encoded_size() + 2;
        if need > self.free() {
            return false;
        }
        let start = self.cell_start - cell.encoded_size();
        cell.encode_into(&mut self.buf[start..self.cell_start]);
        self.cell_start = start;
        let slot = PAGE_HEADER_LEN + 2 * self.cell_count;
        self.buf[slot..slot + 2].copy_from_slice(&(start as u16).to_le_bytes());
        self.cell_count += 1;
        true
    }

    /// Seals the page: writes the cell count, checksums the contents,
    /// and returns the full page bytes.
    pub fn finalize(mut self) -> Vec<u8> {
        self.buf[32..34].copy_from_slice(&(self.cell_count as u16).to_le_bytes());
        let digest = sha256(&self.buf[32..]);
        self.buf[..32].copy_from_slice(&digest);
        self.buf
    }

    /// Parses a sealed page back into its cells, in insertion order.
    ///
    /// # Errors
    ///
    /// [`PageError::Checksum`] when the stored digest does not match;
    /// [`PageError::Structure`] when the digest matches but the slot
    /// directory or a cell is malformed.
    pub fn parse(buf: &[u8]) -> Result<Vec<Cell>, PageError> {
        if buf.len() < PAGE_HEADER_LEN {
            return Err(PageError::Structure("page shorter than its header"));
        }
        if sha256(&buf[32..]) != buf[..32] {
            return Err(PageError::Checksum);
        }
        let count = u16::from_le_bytes(buf[32..34].try_into().expect("2 bytes")) as usize;
        let slots_end = PAGE_HEADER_LEN + 2 * count;
        if slots_end > buf.len() {
            return Err(PageError::Structure("slot directory exceeds page"));
        }
        let mut cells = Vec::with_capacity(count);
        for i in 0..count {
            let slot = PAGE_HEADER_LEN + 2 * i;
            let off = u16::from_le_bytes(buf[slot..slot + 2].try_into().expect("2 bytes")) as usize;
            if off < slots_end || off >= buf.len() {
                return Err(PageError::Structure("slot offset out of bounds"));
            }
            cells.push(Cell::decode(&buf[off..]).map_err(PageError::Structure)?);
        }
        Ok(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(id: u64, len: usize) -> Cell {
        Cell::Put {
            doc_id: id,
            payload: vec![id as u8; len],
        }
    }

    #[test]
    fn roundtrip_cells_in_insertion_order() {
        let mut page = Page::new(512);
        let cells = vec![put(1, 10), Cell::Tombstone { doc_id: 2 }, put(3, 0)];
        for c in &cells {
            assert!(page.insert(c));
        }
        let bytes = page.finalize();
        assert_eq!(bytes.len(), 512);
        assert_eq!(Page::parse(&bytes).unwrap(), cells);
    }

    #[test]
    fn page_bytes_are_deterministic() {
        let build = || {
            let mut p = Page::new(512);
            p.insert(&put(7, 30));
            p.insert(&put(8, 40));
            p.finalize()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn full_page_refuses_and_then_fits_fresh() {
        let mut page = Page::new(MIN_PAGE_SIZE);
        let big = put(1, Page::max_cell_size(MIN_PAGE_SIZE) - 13);
        assert!(page.insert(&big));
        assert!(!page.insert(&put(2, 10)), "second big cell must not fit");
        let mut fresh = Page::new(MIN_PAGE_SIZE);
        assert!(fresh.insert(&put(2, 10)));
    }

    #[test]
    fn flipped_bit_anywhere_fails_the_checksum() {
        let mut page = Page::new(256);
        page.insert(&put(1, 20));
        let bytes = page.finalize();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                Page::parse(&bad).is_err(),
                "flip at {pos} must not parse clean"
            );
        }
    }

    #[test]
    fn hostile_slot_directory_rejected() {
        // forge a checksum-valid page whose slot count exceeds the page
        let mut buf = vec![0u8; 256];
        buf[32..34].copy_from_slice(&u16::MAX.to_le_bytes());
        let digest = sha256(&buf[32..]);
        buf[..32].copy_from_slice(&digest);
        assert_eq!(
            Page::parse(&buf),
            Err(PageError::Structure("slot directory exceeds page"))
        );

        // and one whose single slot points outside the cell area
        let mut buf = vec![0u8; 256];
        buf[32..34].copy_from_slice(&1u16.to_le_bytes());
        buf[34..36].copy_from_slice(&3u16.to_le_bytes()); // inside the header
        let digest = sha256(&buf[32..]);
        buf[..32].copy_from_slice(&digest);
        assert_eq!(
            Page::parse(&buf),
            Err(PageError::Structure("slot offset out of bounds"))
        );
    }

    #[test]
    fn truncated_page_is_structural() {
        let bytes = {
            let mut p = Page::new(256);
            p.insert(&put(1, 5));
            p.finalize()
        };
        assert_eq!(
            Page::parse(&bytes[..20]),
            Err(PageError::Structure("page shorter than its header"))
        );
        // a long-but-short page: checksum is over different bytes
        assert_eq!(Page::parse(&bytes[..200]), Err(PageError::Checksum));
    }
}
