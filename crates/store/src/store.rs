//! The [`PagedStore`]: a directory of segments with one active tail.
//!
//! Appends go to the active segment; when it crosses the configured
//! size it is sealed and a new one starts. Sealed segments are
//! immutable, so readers stream them without coordination, and
//! **compaction** replaces the sealed set with one merged segment —
//! latest cell per document wins, tombstones drop out — instead of
//! rewriting the store in place. Segment ids are monotone; the merged
//! segment takes a fresh id, so a crash mid-compaction leaves either
//! the old set or the new segment plus deletable leftovers, never a
//! half-written hybrid (the new segment is synced before any old file
//! is unlinked).

use crate::crash::{fused_remove_file, fused_rename, CrashFuse};
use crate::page::Cell;
use crate::segment::{CellIter, SegmentInfo, SegmentReader, SegmentWriter};
use crate::StoreError;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Where a document's winning cell lives: one page read away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellLocation {
    /// Segment id the cell lives in.
    pub segment: u64,
    /// Zero-based page index inside the segment.
    pub page: u64,
    /// Slot index inside the page.
    pub slot: u16,
}

/// Knobs for a [`PagedStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// Page size for every segment written (existing segments keep
    /// the size recorded in their headers).
    pub page_size: usize,
    /// Seal the active segment once it holds at least this many bytes.
    pub segment_max_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            page_size: 4096,
            segment_max_bytes: 8 << 20,
        }
    }
}

/// Aggregate counters from a full streaming pass over the store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Sealed segments on disk.
    pub segments: u64,
    /// Pages parsed across all segments.
    pub pages: u64,
    /// Cells of either kind.
    pub cells: u64,
    /// Document puts.
    pub puts: u64,
    /// Deletion tombstones.
    pub tombstones: u64,
    /// Total file bytes, headers included.
    pub bytes: u64,
    /// Torn final appends skipped during the pass.
    pub torn_tails: u64,
    /// Live documents in the point-lookup index (puts minus
    /// tombstones, duplicates collapsed).
    pub indexed_docs: u64,
}

/// A directory of append-only segments holding opaque document cells.
pub struct PagedStore {
    dir: PathBuf,
    schema_digest: [u8; 32],
    config: StoreConfig,
    /// Sealed segment ids, ascending. Cells replay in this order.
    sealed: Vec<u64>,
    active: Option<SegmentWriter>,
    next_segment_id: u64,
    /// Point-lookup index: each live document's winning cell, one page
    /// read away. Built by replaying every segment at open, maintained
    /// on append, rebuilt by compaction.
    index: HashMap<u64, CellLocation>,
    /// Live documents in first-put order — the store's replay order
    /// with overwrites collapsed onto their original position and
    /// tombstoned documents removed. This is the scan order a corpus
    /// backend serves.
    order: Vec<u64>,
    /// Open segment readers kept warm for point lookups (invalidated
    /// by compaction, which unlinks the files).
    readers: HashMap<u64, SegmentReader>,
    /// Crash-injection budget every disk unit is charged to. Unlimited
    /// (never trips) outside crash tests.
    fuse: Arc<CrashFuse>,
    /// Torn segment creations discarded at open — the residue of a
    /// crash before the newest segment's header landed.
    torn_creations: u64,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:010}.apks"))
}

/// Where compaction stages its merged segment before the atomic
/// rename. The name does not parse as a segment, so a crash leaves a
/// file [`PagedStore::open`] ignores (and sweeps away), never one that
/// shadows live data.
fn segment_tmp_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:010}.apks.tmp"))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let id = name.strip_prefix("seg-")?.strip_suffix(".apks")?;
    id.parse().ok()
}

impl PagedStore {
    /// Opens (or creates) the store at `dir` for the deployment whose
    /// schema digest is `schema_digest`.
    ///
    /// Every segment file present has its header validated against the
    /// digest; a segment from another deployment is an error, not a
    /// silent skip. Two kinds of crash residue are recovered instead
    /// of refused: stale `.apks.tmp` staging files (a compaction that
    /// died before its rename) are swept away, and the **newest**
    /// segment may end before its header does (a crash during segment
    /// creation — those cells were never acknowledged) and is
    /// discarded. The same short header on any older segment is real
    /// truncation and still fails loudly: older segments were synced
    /// before their successors existed.
    ///
    /// # Errors
    ///
    /// I/O failures, or any header validation failure.
    pub fn open(
        dir: &Path,
        schema_digest: [u8; 32],
        config: StoreConfig,
    ) -> Result<PagedStore, StoreError> {
        std::fs::create_dir_all(dir)?;
        let mut found = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".apks.tmp") {
                // a compaction staging file whose rename never happened
                std::fs::remove_file(entry.path())?;
                continue;
            }
            let Some(id) = parse_segment_name(name) else {
                continue;
            };
            found.push((id, entry.path()));
        }
        found.sort_unstable_by_key(|(id, _)| *id);
        let newest = found.last().map(|(id, _)| *id);
        let mut sealed = Vec::new();
        let mut torn_creations = 0;
        for (id, path) in &found {
            // header check now, so a foreign or damaged segment fails
            // at open instead of mid-scan
            match SegmentReader::open(path, Some(&schema_digest)) {
                Ok(_) => sealed.push(*id),
                Err(StoreError::ShortHeader) if Some(*id) == newest => {
                    std::fs::remove_file(path)?;
                    torn_creations += 1;
                }
                Err(e) => return Err(e),
            }
        }
        let next_segment_id = newest.map_or(0, |last| last + 1);
        let mut store = PagedStore {
            dir: dir.to_path_buf(),
            schema_digest,
            config,
            sealed,
            active: None,
            next_segment_id,
            index: HashMap::new(),
            order: Vec::new(),
            readers: HashMap::new(),
            fuse: CrashFuse::unlimited(),
            torn_creations,
        };
        store.rebuild_index();
        Ok(store)
    }

    /// Arms crash injection: every subsequent disk unit (bytes,
    /// creates, syncs, renames, unlinks) is charged to `fuse`, and the
    /// store dies with [`StoreError::Crashed`] when the budget runs
    /// out. Production stores keep the default unlimited fuse.
    pub fn set_crash_fuse(&mut self, fuse: Arc<CrashFuse>) {
        self.fuse = fuse;
    }

    /// Torn segment creations discarded by [`PagedStore::open`].
    pub fn torn_creations(&self) -> u64 {
        self.torn_creations
    }

    /// Replays every sealed segment once, building the `doc_id →
    /// (segment, page, slot)` index and the live-document order. Torn
    /// tails are skipped exactly as a scan skips them; interior
    /// corruption stops indexing that segment (the damage still fails
    /// loudly on the next full scan — recovery must not turn an
    /// openable store into an unopenable one).
    fn rebuild_index(&mut self) {
        self.index.clear();
        self.order.clear();
        let sealed = self.sealed.clone();
        for segment in sealed {
            let path = segment_path(&self.dir, segment);
            let Ok(reader) = SegmentReader::open(&path, Some(&self.schema_digest)) else {
                continue;
            };
            let mut cells = reader.cells();
            while let Some(item) = cells.next_located() {
                let Ok(((page, slot), cell)) = item else {
                    break;
                };
                self.apply_to_index(
                    &cell,
                    CellLocation {
                        segment,
                        page,
                        slot,
                    },
                );
            }
        }
    }

    /// Applies one replayed/appended cell to the point-lookup index.
    fn apply_to_index(&mut self, cell: &Cell, loc: CellLocation) {
        match cell {
            Cell::Put { doc_id, .. } => {
                if self.index.insert(*doc_id, loc).is_none() {
                    self.order.push(*doc_id);
                }
            }
            Cell::Tombstone { doc_id } => {
                if self.index.remove(doc_id).is_some() {
                    self.order.retain(|id| id != doc_id);
                }
            }
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The deployment digest segments are pinned to.
    pub fn schema_digest(&self) -> &[u8; 32] {
        &self.schema_digest
    }

    /// Sealed segment count (the active tail, if any, is excluded).
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    /// Appends one cell to the active segment, rolling to a new
    /// segment when the active one crosses the size threshold.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`StoreError::CellTooLarge`].
    pub fn append(&mut self, cell: &Cell) -> Result<(), StoreError> {
        if self.active.is_none() {
            let id = self.next_segment_id;
            self.next_segment_id += 1;
            self.active = Some(SegmentWriter::create_fused(
                &segment_path(&self.dir, id),
                id,
                self.schema_digest,
                self.config.page_size,
                self.fuse.clone(),
            )?);
        }
        let writer = self.active.as_mut().expect("just ensured");
        let segment = writer.segment_id();
        let (page, slot) = writer.append(cell)?;
        self.apply_to_index(
            cell,
            CellLocation {
                segment,
                page,
                slot,
            },
        );
        let writer = self.active.as_mut().expect("still active");
        if writer.bytes_written() >= self.config.segment_max_bytes {
            self.seal()?;
        }
        Ok(())
    }

    /// Shorthand for appending a [`Cell::Put`].
    ///
    /// # Errors
    ///
    /// As [`PagedStore::append`].
    pub fn put(&mut self, doc_id: u64, payload: Vec<u8>) -> Result<(), StoreError> {
        self.append(&Cell::Put { doc_id, payload })
    }

    /// Shorthand for appending a [`Cell::Tombstone`].
    ///
    /// # Errors
    ///
    /// As [`PagedStore::append`].
    pub fn delete(&mut self, doc_id: u64) -> Result<(), StoreError> {
        self.append(&Cell::Tombstone { doc_id })
    }

    /// Seals the active segment (no-op when there is none), making
    /// every appended cell durable and visible to scans.
    ///
    /// # Errors
    ///
    /// I/O failures flushing or syncing.
    pub fn seal(&mut self) -> Result<(), StoreError> {
        if let Some(writer) = self.active.take() {
            let info = writer.finish()?;
            if info.cells == 0 {
                // an empty segment is pure noise: drop the file
                fused_remove_file(&self.fuse, &segment_path(&self.dir, info.segment_id))?;
            } else {
                self.sealed.push(info.segment_id);
            }
        }
        Ok(())
    }

    /// Streams every cell in the store, segment by segment in id
    /// order, page at a time — memory use is one page regardless of
    /// corpus size. Seals the active segment first so the scan sees
    /// every acknowledged append.
    ///
    /// # Errors
    ///
    /// I/O failures sealing the active segment.
    pub fn scan(&mut self) -> Result<StoreScan, StoreError> {
        self.seal()?;
        let paths: Vec<PathBuf> = self
            .sealed
            .iter()
            .map(|&id| segment_path(&self.dir, id))
            .collect();
        Ok(StoreScan {
            digest: self.schema_digest,
            paths: paths.into_iter(),
            cur: None,
            torn_tails: 0,
            pages: 0,
        })
    }

    /// Live documents in the point-lookup index.
    pub fn doc_count(&self) -> usize {
        self.index.len()
    }

    /// Live documents in replay order — first-put order with
    /// overwrites collapsed onto their original position and
    /// tombstoned documents removed. Compaction may reorder documents
    /// that were overwritten (their winning cell replays at its later
    /// position); callers holding positional state must re-read this
    /// after [`PagedStore::compact`].
    pub fn doc_order(&self) -> &[u64] {
        &self.order
    }

    /// Where `doc_id`'s winning cell lives, if the document is live.
    pub fn location_of(&self, doc_id: u64) -> Option<CellLocation> {
        self.index.get(&doc_id).copied()
    }

    /// Point lookup: reads and checksums **exactly one page** — the
    /// one holding `doc_id`'s winning cell — and returns its payload.
    /// Never pays a full segment scan. Seals the active segment first
    /// so the freshest append is visible (same visibility rule as
    /// [`PagedStore::scan`]).
    ///
    /// Returns `Ok(None)` for a document that was never put or was
    /// tombstoned.
    ///
    /// # Errors
    ///
    /// I/O failures, page checksum mismatches, or an index/page
    /// disagreement (a writer bug surfaced as [`StoreError::CorruptPage`]).
    pub fn get(&mut self, doc_id: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.seal()?;
        let Some(loc) = self.index.get(&doc_id).copied() else {
            return Ok(None);
        };
        if !self.readers.contains_key(&loc.segment) {
            let reader = SegmentReader::open(
                &segment_path(&self.dir, loc.segment),
                Some(&self.schema_digest),
            )?;
            self.readers.insert(loc.segment, reader);
        }
        let reader = self.readers.get_mut(&loc.segment).expect("just inserted");
        let cells = reader.page_cells(loc.page)?;
        match cells.get(loc.slot as usize) {
            Some(Cell::Put {
                doc_id: found,
                payload,
            }) if *found == doc_id => Ok(Some(payload.clone())),
            _ => Err(StoreError::CorruptPage {
                segment: loc.segment,
                page: loc.page,
                what: "indexed slot does not hold the document",
            }),
        }
    }

    /// Merges every sealed segment into one: the **latest** cell per
    /// document wins and tombstoned documents vanish.
    ///
    /// Crash-safe by construction: the merged segment is written to a
    /// `.apks.tmp` staging name, synced, and only then renamed over
    /// its final name — a crash mid-write leaves a staging file
    /// [`PagedStore::open`] sweeps away, never a half-written segment
    /// shadowing live data. Old segment files are unlinked only after
    /// the rename, in **ascending** id order, so any crash leaves a
    /// suffix of the old set in which no put outlives its tombstone
    /// (a put's tombstone always lives in a later segment) and the
    /// merged segment — which replays last — still wins.
    ///
    /// Returns the merged segment's info (`cells == 0` means the store
    /// compacted to empty and no segment was kept).
    ///
    /// # Errors
    ///
    /// I/O failures, or corruption discovered while streaming.
    pub fn compact(&mut self) -> Result<SegmentInfo, StoreError> {
        self.seal()?;
        // pass 1: last writer wins — remember each document's final
        // cell sequence number and whether it was a tombstone
        let mut last: HashMap<u64, (u64, bool)> = HashMap::new();
        for (seq, item) in (0_u64..).zip(self.scan()?) {
            let cell = item?;
            last.insert(cell.doc_id(), (seq, matches!(cell, Cell::Tombstone { .. })));
        }

        // pass 2: replay, keeping only each document's winning put
        let id = self.next_segment_id;
        self.next_segment_id += 1;
        let tmp = segment_tmp_path(&self.dir, id);
        let path = segment_path(&self.dir, id);
        let mut writer = SegmentWriter::create_fused(
            &tmp,
            id,
            self.schema_digest,
            self.config.page_size,
            self.fuse.clone(),
        )?;
        for (seq, item) in (0_u64..).zip(self.scan()?) {
            let cell = item?;
            let (win_seq, is_tombstone) = last[&cell.doc_id()];
            if seq == win_seq && !is_tombstone {
                writer.append(&cell)?;
            }
        }
        let info = writer.finish()?;

        if info.cells == 0 {
            // compacted to empty: no segment to publish
            fused_remove_file(&self.fuse, &tmp)?;
        } else {
            // publish atomically, then retire the durable inputs
            fused_rename(&self.fuse, &tmp, &path)?;
        }
        for &old in &self.sealed {
            fused_remove_file(&self.fuse, &segment_path(&self.dir, old))?;
        }
        self.sealed.clear();
        if info.cells != 0 {
            self.sealed.push(id);
        }
        // every cached reader points at an unlinked file, and every
        // indexed location names a dead segment: rebuild both
        self.readers.clear();
        self.rebuild_index();
        Ok(info)
    }

    /// One full streaming pass, counting everything.
    ///
    /// # Errors
    ///
    /// I/O failures, or corruption discovered while streaming.
    pub fn stats(&mut self) -> Result<StoreStats, StoreError> {
        self.seal()?;
        let mut stats = StoreStats {
            segments: self.sealed.len() as u64,
            indexed_docs: self.index.len() as u64,
            ..StoreStats::default()
        };
        for &id in &self.sealed {
            let path = segment_path(&self.dir, id);
            stats.bytes += std::fs::metadata(&path)?.len();
            let mut iter = SegmentReader::open(&path, Some(&self.schema_digest))?.cells();
            for item in iter.by_ref() {
                match item? {
                    Cell::Put { .. } => stats.puts += 1,
                    Cell::Tombstone { .. } => stats.tombstones += 1,
                }
                stats.cells += 1;
            }
            stats.pages += iter.pages_read();
            stats.torn_tails += u64::from(iter.torn_tail());
        }
        Ok(stats)
    }
}

/// Streaming iterator over every cell in a store, in append order.
pub struct StoreScan {
    digest: [u8; 32],
    paths: std::vec::IntoIter<PathBuf>,
    cur: Option<CellIter>,
    torn_tails: u64,
    pages: u64,
}

impl StoreScan {
    /// Torn final appends skipped so far.
    pub fn torn_tails(&self) -> u64 {
        self.torn_tails
    }

    /// Pages parsed so far.
    pub fn pages(&self) -> u64 {
        self.pages
    }
}

impl Iterator for StoreScan {
    type Item = Result<Cell, StoreError>;

    fn next(&mut self) -> Option<Result<Cell, StoreError>> {
        loop {
            if let Some(iter) = &mut self.cur {
                match iter.next() {
                    Some(item) => return Some(item),
                    None => {
                        self.torn_tails += u64::from(iter.torn_tail());
                        self.pages += iter.pages_read();
                        self.cur = None;
                    }
                }
            }
            let path = self.paths.next()?;
            match SegmentReader::open(&path, Some(&self.digest)) {
                Ok(reader) => self.cur = Some(reader.cells()),
                Err(e) => {
                    // poison the rest of the scan: segment order is
                    // part of the contract, skipping one would
                    // silently reorder documents
                    self.paths = Vec::new().into_iter();
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!("apks-store-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn small_config() -> StoreConfig {
        StoreConfig {
            page_size: 256,
            segment_max_bytes: 1024,
        }
    }

    fn collect(store: &mut PagedStore) -> Vec<Cell> {
        store.scan().unwrap().map(|c| c.unwrap()).collect()
    }

    #[test]
    fn appends_survive_reopen_in_order() {
        let tmp = TempDir::new("reopen");
        let digest = [9u8; 32];
        let cells: Vec<Cell> = (0..200)
            .map(|i| Cell::Put {
                doc_id: i,
                payload: vec![(i % 256) as u8; 16],
            })
            .collect();
        {
            let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
            for c in &cells {
                store.append(c).unwrap();
            }
            store.seal().unwrap();
            assert!(store.sealed_segments() > 1, "small cap must roll segments");
        }
        let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
        assert_eq!(collect(&mut store), cells);
        // and appends continue after the highest existing id
        store.put(999, vec![1, 2, 3]).unwrap();
        let all = collect(&mut store);
        assert_eq!(all.len(), 201);
        assert_eq!(all[200].doc_id(), 999);
    }

    #[test]
    fn compaction_keeps_latest_and_drops_tombstones() {
        let tmp = TempDir::new("compact");
        let mut store = PagedStore::open(&tmp.0, [1u8; 32], small_config()).unwrap();
        for i in 0..50u64 {
            store.put(i, vec![1u8; 8]).unwrap();
        }
        // overwrite half, delete a quarter
        for i in 0..25u64 {
            store.put(i, vec![2u8; 8]).unwrap();
        }
        for i in 25..37u64 {
            store.delete(i).unwrap();
        }
        let before = store.stats().unwrap();
        assert_eq!(before.cells, 50 + 25 + 12);

        let info = store.compact().unwrap();
        assert_eq!(info.cells, 38, "50 docs − 12 tombstoned");
        assert_eq!(store.sealed_segments(), 1);

        let after: Vec<Cell> = collect(&mut store);
        assert_eq!(after.len(), 38);
        for c in &after {
            match c {
                Cell::Put { doc_id, payload } if *doc_id < 25 => {
                    assert_eq!(payload, &vec![2u8; 8], "doc {doc_id} must be version 2");
                }
                Cell::Put { doc_id, payload } => {
                    assert!(*doc_id >= 37, "doc {doc_id} was tombstoned");
                    assert_eq!(payload, &vec![1u8; 8]);
                }
                Cell::Tombstone { doc_id } => panic!("tombstone {doc_id} survived"),
            }
        }
        // compacting a compacted store is a fixpoint
        let again = store.compact().unwrap();
        assert_eq!(again.cells, 38);
    }

    #[test]
    fn compact_to_empty_leaves_no_segments() {
        let tmp = TempDir::new("compact-empty");
        let mut store = PagedStore::open(&tmp.0, [1u8; 32], small_config()).unwrap();
        for i in 0..10u64 {
            store.put(i, vec![0u8; 4]).unwrap();
        }
        for i in 0..10u64 {
            store.delete(i).unwrap();
        }
        let info = store.compact().unwrap();
        assert_eq!(info.cells, 0);
        assert_eq!(store.sealed_segments(), 0);
        assert_eq!(store.stats().unwrap().bytes, 0);
    }

    #[test]
    fn same_appends_produce_identical_files() {
        let run = |tag: &str| -> Vec<(String, Vec<u8>)> {
            let tmp = TempDir::new(tag);
            let mut store = PagedStore::open(&tmp.0, [5u8; 32], small_config()).unwrap();
            for i in 0..100u64 {
                store.put(i, i.to_le_bytes().to_vec()).unwrap();
            }
            store.seal().unwrap();
            let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&tmp.0)
                .unwrap()
                .map(|e| {
                    let e = e.unwrap();
                    (
                        e.file_name().to_string_lossy().into_owned(),
                        std::fs::read(e.path()).unwrap(),
                    )
                })
                .collect();
            files.sort();
            files
        };
        assert_eq!(run("det-a"), run("det-b"));
    }

    #[test]
    fn point_lookup_sees_every_live_doc() {
        let tmp = TempDir::new("get");
        let mut store = PagedStore::open(&tmp.0, [3u8; 32], small_config()).unwrap();
        for i in 0..80u64 {
            store.put(i, vec![(i % 251) as u8; 12]).unwrap();
        }
        for i in 0..20u64 {
            store.put(i, vec![0xAB; 20]).unwrap(); // overwrite
        }
        for i in 20..30u64 {
            store.delete(i).unwrap();
        }
        assert_eq!(store.doc_count(), 70);
        for i in 0..20u64 {
            assert_eq!(store.get(i).unwrap(), Some(vec![0xAB; 20]), "doc {i}");
        }
        for i in 20..30u64 {
            assert_eq!(store.get(i).unwrap(), None, "doc {i} tombstoned");
        }
        for i in 30..80u64 {
            assert_eq!(store.get(i).unwrap(), Some(vec![(i % 251) as u8; 12]));
        }
        assert_eq!(store.get(999).unwrap(), None);
        // order: first-put order, overwrites keep position, deletes gone
        let expect: Vec<u64> = (0..20u64).chain(30..80).collect();
        assert_eq!(store.doc_order(), &expect[..]);
    }

    #[test]
    fn index_survives_reopen_and_compaction() {
        let tmp = TempDir::new("get-reopen");
        let digest = [4u8; 32];
        {
            let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
            for i in 0..60u64 {
                store.put(i, i.to_le_bytes().to_vec()).unwrap();
            }
            store.put(7, vec![0xEE; 9]).unwrap();
            store.delete(13).unwrap();
            store.seal().unwrap();
        }
        let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
        assert_eq!(store.doc_count(), 59);
        assert_eq!(store.get(7).unwrap(), Some(vec![0xEE; 9]));
        assert_eq!(store.get(13).unwrap(), None);
        assert_eq!(store.get(42).unwrap(), Some(42u64.to_le_bytes().to_vec()));
        assert_eq!(store.stats().unwrap().indexed_docs, 59);

        store.compact().unwrap();
        assert_eq!(store.doc_count(), 59);
        assert_eq!(store.get(7).unwrap(), Some(vec![0xEE; 9]));
        assert_eq!(store.get(13).unwrap(), None);
        assert_eq!(store.get(42).unwrap(), Some(42u64.to_le_bytes().to_vec()));
        // compaction rebuilt locations into the merged segment
        let loc = store.location_of(42).unwrap();
        assert_eq!(loc.segment, store.sealed.last().copied().unwrap());
    }

    #[test]
    fn point_lookup_reads_exactly_one_page_of_fresh_appends() {
        // a get right after a put must see it (seal-on-read visibility)
        let tmp = TempDir::new("get-fresh");
        let mut store = PagedStore::open(&tmp.0, [6u8; 32], small_config()).unwrap();
        store.put(1, vec![1]).unwrap();
        assert_eq!(store.get(1).unwrap(), Some(vec![1]));
        store.put(2, vec![2]).unwrap();
        assert_eq!(store.get(2).unwrap(), Some(vec![2]));
        assert_eq!(store.get(1).unwrap(), Some(vec![1]));
    }

    /// Live doc → payload map via point lookups.
    fn live_map(store: &mut PagedStore) -> HashMap<u64, Vec<u8>> {
        store
            .doc_order()
            .to_vec()
            .into_iter()
            .map(|id| (id, store.get(id).unwrap().unwrap()))
            .collect()
    }

    /// Prelude shared by the compaction crash tests: two generations
    /// of puts plus deletions, sealed across several segments.
    fn compaction_prelude(store: &mut PagedStore) {
        for i in 0..30u64 {
            store.put(i, vec![1u8; 8]).unwrap();
        }
        for i in 0..10u64 {
            store.put(i, vec![2u8; 8]).unwrap();
        }
        for i in 10..15u64 {
            store.delete(i).unwrap();
        }
        store.seal().unwrap();
    }

    #[test]
    fn compaction_crash_between_write_and_rename_preserves_old_set() {
        use crate::crash::CrashFuse;
        let digest = [8u8; 32];
        // dry run: measure the fs-op budget of the whole compaction
        let unit_counts = {
            let tmp = TempDir::new("compact-crash-dry");
            let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
            compaction_prelude(&mut store);
            let olds = store.sealed_segments() as u64;
            let fuse = CrashFuse::unlimited();
            store.set_crash_fuse(fuse.clone());
            let before = fuse.consumed();
            store.compact().unwrap();
            (fuse.consumed() - before, olds)
        };
        let (total, olds) = unit_counts;
        // compaction spends: create(1) + bytes + sync(1) + rename(1) +
        // one unlink per old segment — so `total - olds - 1` dies with
        // the merged segment fully synced but the rename not yet done
        let budget = total - olds - 1;
        let tmp = TempDir::new("compact-crash-rename");
        let expected = {
            let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
            compaction_prelude(&mut store);
            let pre_compact = live_map(&mut store);
            store.set_crash_fuse(CrashFuse::armed(budget));
            assert_eq!(store.compact().unwrap_err(), StoreError::Crashed);
            pre_compact
        };
        // the staging file exists, no final-name segment was published
        let staged = std::fs::read_dir(&tmp.0)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".apks.tmp")
            })
            .count();
        assert_eq!(staged, 1, "crash must land between sync and rename");
        // reopen: staging swept, old segments intact, data unchanged
        let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
        assert_eq!(live_map(&mut store), expected);
        assert_eq!(
            std::fs::read_dir(&tmp.0)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .ends_with(".apks.tmp")
                })
                .count(),
            0,
            "open must sweep the staging file"
        );
    }

    #[test]
    fn compaction_crash_mid_unlink_keeps_merged_winning() {
        use crate::crash::CrashFuse;
        let digest = [8u8; 32];
        let (total, _) = {
            let tmp = TempDir::new("compact-unlink-dry");
            let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
            compaction_prelude(&mut store);
            let fuse = CrashFuse::unlimited();
            store.set_crash_fuse(fuse.clone());
            store.compact().unwrap();
            (fuse.consumed(), store.sealed_segments())
        };
        // every budget in the unlink window: rename done, 0..olds olds
        // removed — the merged segment must win over any leftover
        for back in 1..4u64 {
            let tmp = TempDir::new(&format!("compact-unlink-{back}"));
            let expected = {
                let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
                compaction_prelude(&mut store);
                let map = live_map(&mut store);
                store.set_crash_fuse(CrashFuse::armed(total - back));
                assert_eq!(store.compact().unwrap_err(), StoreError::Crashed);
                map
            };
            let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
            assert_eq!(live_map(&mut store), expected, "budget total-{back}");
        }
    }

    #[test]
    fn torn_segment_creation_is_discarded_at_open() {
        use crate::crash::CrashFuse;
        let digest = [7u8; 32];
        let tmp = TempDir::new("torn-create");
        {
            let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
            store.put(1, vec![0xAA; 8]).unwrap();
            store.seal().unwrap();
            // next append creates a segment; budget 1 covers only the
            // create fs-op, so the header write dies part-way (the
            // BufWriter flush on drop is also refused — fuses latch)
            store.set_crash_fuse(CrashFuse::armed(1));
            let _ = store.put(2, vec![0xBB; 8]);
            let _ = store.seal();
        }
        let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
        assert_eq!(store.torn_creations(), 1);
        assert_eq!(store.get(1).unwrap(), Some(vec![0xAA; 8]));
        assert_eq!(store.get(2).unwrap(), None, "doc 2 was never durable");
        // the torn file's id is not reused
        store.put(3, vec![0xCC; 8]).unwrap();
        store.seal().unwrap();
        assert_eq!(store.sealed.last().copied(), Some(2));
    }

    #[test]
    fn short_header_on_older_segment_still_fails_open() {
        let digest = [7u8; 32];
        let tmp = TempDir::new("short-older");
        {
            let mut store = PagedStore::open(&tmp.0, digest, small_config()).unwrap();
            for i in 0..200u64 {
                store.put(i, vec![1u8; 16]).unwrap();
            }
            store.seal().unwrap();
            assert!(store.sealed_segments() > 1);
        }
        // truncate the FIRST segment below its header: that file was
        // synced long ago, so this is corruption, not crash residue
        let first = segment_path(&tmp.0, 0);
        let bytes = std::fs::read(&first).unwrap();
        std::fs::write(&first, &bytes[..40]).unwrap();
        assert_eq!(
            PagedStore::open(&tmp.0, digest, small_config()).err(),
            Some(StoreError::ShortHeader)
        );
    }

    #[test]
    fn foreign_segment_refused_at_open() {
        let tmp = TempDir::new("foreign");
        {
            let mut store = PagedStore::open(&tmp.0, [1u8; 32], small_config()).unwrap();
            store.put(1, vec![0u8; 4]).unwrap();
            store.seal().unwrap();
        }
        assert_eq!(
            PagedStore::open(&tmp.0, [2u8; 32], small_config()).err(),
            Some(StoreError::SchemaDigestMismatch)
        );
    }
}
