//! Seeded crash injection for the storage engine.
//!
//! A [`CrashFuse`] models a process that dies after writing a fixed
//! number of **units** to disk — one unit per file byte, one per
//! filesystem operation (create, sync, rename, unlink). Wiring a fuse
//! into a [`crate::PagedStore`] makes every on-disk byte boundary a
//! crash point: the fuse lets the budgeted prefix of each write
//! through, then fails the operation and every one after it with
//! [`StoreError::Crashed`], exactly the torn-prefix state a power cut
//! leaves behind. Because the budget is a plain integer, a sweep over
//! budgets `0..total` visits **every** crash point of a workload, and
//! the same budget always dies at the same byte — the determinism the
//! chaos suite's same-seed replays rely on.
//!
//! The fuse never un-trips. In particular the `BufWriter` inside a
//! [`crate::SegmentWriter`] flushes its buffer on drop; once tripped,
//! those late writes fail too (and `Drop` swallows the error), so no
//! buffered bytes leak to disk after the simulated crash — what a real
//! dead process also cannot do.

use crate::StoreError;
use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The payload type carried by a crash-injected [`io::Error`]; the
/// store's `From<io::Error>` maps it to [`StoreError::Crashed`].
#[derive(Debug)]
pub struct CrashPoint;

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected crash point: write budget exhausted")
    }
}

impl std::error::Error for CrashPoint {}

fn crash_error() -> io::Error {
    io::Error::other(CrashPoint)
}

/// True iff `e` is a crash-fuse injection (vs. a real I/O failure).
pub fn is_crash(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<CrashPoint>())
}

/// A shared write budget: the number of disk units the "process" gets
/// to spend before it dies.
#[derive(Debug)]
pub struct CrashFuse {
    /// Remaining units; meaningless once unlimited.
    remaining: AtomicU64,
    /// Unlimited fuses never trip (the production configuration).
    unlimited: bool,
    /// Latches permanently once the budget runs out.
    tripped: AtomicBool,
    /// Units actually spent — read this from an unlimited dry run to
    /// learn a workload's total crash-point count.
    consumed: AtomicU64,
}

impl CrashFuse {
    /// A fuse that dies after `budget` units.
    pub fn armed(budget: u64) -> Arc<CrashFuse> {
        Arc::new(CrashFuse {
            remaining: AtomicU64::new(budget),
            unlimited: false,
            tripped: AtomicBool::new(false),
            consumed: AtomicU64::new(0),
        })
    }

    /// A fuse that never trips but still counts consumption.
    pub fn unlimited() -> Arc<CrashFuse> {
        Arc::new(CrashFuse {
            remaining: AtomicU64::new(0),
            unlimited: true,
            tripped: AtomicBool::new(false),
            consumed: AtomicU64::new(0),
        })
    }

    /// Has the budget run out?
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    /// Units spent so far.
    pub fn consumed(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }

    /// Takes up to `want` units; returns how many were granted. Zero
    /// means the fuse is (now) tripped.
    fn take(&self, want: u64) -> u64 {
        if self.unlimited {
            self.consumed.fetch_add(want, Ordering::Relaxed);
            return want;
        }
        if self.tripped() {
            return 0;
        }
        let granted = loop {
            let cur = self.remaining.load(Ordering::Relaxed);
            let grant = cur.min(want);
            if self
                .remaining
                .compare_exchange(cur, cur - grant, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break grant;
            }
        };
        self.consumed.fetch_add(granted, Ordering::Relaxed);
        if granted < want {
            self.tripped.store(true, Ordering::Relaxed);
        }
        granted
    }

    /// Charges one unit for a whole-filesystem operation (create,
    /// sync, rename, unlink). The operation must not run if this
    /// returns the crash error.
    pub fn fs_op(&self) -> io::Result<()> {
        if self.take(1) == 1 {
            Ok(())
        } else {
            Err(crash_error())
        }
    }
}

/// A [`File`] whose writes spend fuse units byte-for-byte: a write
/// that exceeds the remaining budget lands its granted prefix and
/// nothing more, leaving exactly the torn file a crash would.
#[derive(Debug)]
pub struct FusedFile {
    file: File,
    fuse: Arc<CrashFuse>,
}

impl FusedFile {
    /// Creates `path` (truncating), charging one fs-op unit first.
    ///
    /// # Errors
    ///
    /// The injected crash, or a real create failure.
    pub fn create(path: &std::path::Path, fuse: Arc<CrashFuse>) -> io::Result<FusedFile> {
        fuse.fs_op()?;
        Ok(FusedFile {
            file: File::create(path)?,
            fuse,
        })
    }

    /// `sync_all`, charging one fs-op unit first.
    ///
    /// # Errors
    ///
    /// The injected crash, or a real sync failure.
    pub fn sync_all(&self) -> io::Result<()> {
        self.fuse.fs_op()?;
        self.file.sync_all()
    }
}

impl Write for FusedFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let granted = self.fuse.take(buf.len() as u64) as usize;
        if granted == 0 {
            return Err(crash_error());
        }
        let written = self.file.write(&buf[..granted])?;
        // refund units granted but not landed (short OS write)
        debug_assert!(written <= granted);
        if written < granted && !self.fuse.unlimited {
            self.fuse
                .remaining
                .fetch_add((granted - written) as u64, Ordering::Relaxed);
            self.fuse
                .consumed
                .fetch_sub((granted - written) as u64, Ordering::Relaxed);
        }
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

/// Filesystem-operation wrappers the store routes through so the
/// sweep also lands between whole-file steps (sync-but-not-renamed,
/// renamed-but-olds-alive, …).
pub(crate) fn fused_rename(
    fuse: &CrashFuse,
    from: &std::path::Path,
    to: &std::path::Path,
) -> Result<(), StoreError> {
    fuse.fs_op()?;
    std::fs::rename(from, to)?;
    Ok(())
}

/// As [`fused_rename`], for unlinking.
pub(crate) fn fused_remove_file(
    fuse: &CrashFuse,
    path: &std::path::Path,
) -> Result<(), StoreError> {
    fuse.fs_op()?;
    std::fs::remove_file(path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_fuse_counts_but_never_trips() {
        let fuse = CrashFuse::unlimited();
        assert_eq!(fuse.take(1000), 1000);
        fuse.fs_op().unwrap();
        assert_eq!(fuse.consumed(), 1001);
        assert!(!fuse.tripped());
    }

    #[test]
    fn armed_fuse_grants_exact_prefix_then_trips_forever() {
        let fuse = CrashFuse::armed(10);
        assert_eq!(fuse.take(6), 6);
        assert_eq!(fuse.take(6), 4, "only the remaining budget is granted");
        assert!(fuse.tripped());
        assert_eq!(fuse.take(1), 0, "a tripped fuse never grants again");
        assert!(is_crash(&fuse.fs_op().unwrap_err()));
        assert_eq!(fuse.consumed(), 10);
    }

    #[test]
    fn fused_file_writes_the_granted_prefix_only() {
        let dir = std::env::temp_dir().join(format!("apks-fuse-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.bin");
        // budget: 1 (create) + 5 bytes
        let fuse = CrashFuse::armed(6);
        let mut f = FusedFile::create(&path, fuse.clone()).unwrap();
        // write_all: first write lands 5 bytes, the retry crashes
        let err = f.write_all(&[0xAA; 9]).unwrap_err();
        assert!(is_crash(&err));
        f.flush().unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), vec![0xAA; 5]);
        assert!(fuse.tripped());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_errors_map_to_store_crashed() {
        let e: StoreError = crash_error().into();
        assert_eq!(e, StoreError::Crashed);
        let real: StoreError = io::Error::other("disk on fire").into();
        assert!(matches!(real, StoreError::Io(_)));
    }
}
