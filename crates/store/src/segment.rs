//! Append-only segment files: a checksummed header, then pages.
//!
//! A segment is written exactly once — the active segment receives
//! appended cells until the store seals it — and read many times. The
//! only mutation a crash can leave behind is a **torn tail**: the last
//! page either short of `page_size` bytes or full-size with a checksum
//! that never landed. [`SegmentReader`] detects both at the tail and
//! skips them (the cells were never acknowledged as durable); the same
//! damage *before* the tail is interior corruption and fails loudly.

use crate::crash::{CrashFuse, FusedFile};
use crate::page::{Cell, Page, PageError};
use crate::StoreError;
use apks_math::sha256::sha256;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First eight bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"APKSSEG\0";

/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;

/// Magic (8) + version (4) + page size (4) + segment id (8) + schema
/// digest (32) + header checksum (32).
pub const SEGMENT_HEADER_LEN: usize = 88;

/// The fixed header at the front of a segment file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Format version (always [`SEGMENT_VERSION`] when written).
    pub version: u32,
    /// Page size every page in this segment uses.
    pub page_size: u32,
    /// The store-assigned segment id (monotone across the store).
    pub segment_id: u64,
    /// Digest of the deployment schema the payloads encode against —
    /// rejects cross-deployment segment mixing at open time.
    pub schema_digest: [u8; 32],
}

impl SegmentHeader {
    /// Serializes the header, checksum trailer included.
    pub fn to_bytes(&self) -> [u8; SEGMENT_HEADER_LEN] {
        let mut out = [0u8; SEGMENT_HEADER_LEN];
        out[..8].copy_from_slice(&SEGMENT_MAGIC);
        out[8..12].copy_from_slice(&self.version.to_le_bytes());
        out[12..16].copy_from_slice(&self.page_size.to_le_bytes());
        out[16..24].copy_from_slice(&self.segment_id.to_le_bytes());
        out[24..56].copy_from_slice(&self.schema_digest);
        let digest = sha256(&out[..56]);
        out[56..88].copy_from_slice(&digest);
        out
    }

    /// Strict header decode: magic, checksum, version and page-size
    /// bounds all verified before any page is touched.
    ///
    /// # Errors
    ///
    /// A structured [`StoreError`] naming the first check that failed.
    pub fn from_bytes(bytes: &[u8]) -> Result<SegmentHeader, StoreError> {
        if bytes.len() < SEGMENT_HEADER_LEN {
            return Err(StoreError::ShortHeader);
        }
        if bytes[..8] != SEGMENT_MAGIC {
            return Err(StoreError::BadMagic);
        }
        if sha256(&bytes[..56]) != bytes[56..88] {
            return Err(StoreError::HeaderChecksumMismatch);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != SEGMENT_VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let page_size = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        if !(crate::page::MIN_PAGE_SIZE..=crate::page::MAX_PAGE_SIZE)
            .contains(&(page_size as usize))
        {
            return Err(StoreError::BadPageSize(page_size));
        }
        let segment_id = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let schema_digest: [u8; 32] = bytes[24..56].try_into().expect("32 bytes");
        Ok(SegmentHeader {
            version,
            page_size,
            segment_id,
            schema_digest,
        })
    }
}

/// What [`SegmentWriter::finish`] reports about the sealed segment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentInfo {
    /// The segment id.
    pub segment_id: u64,
    /// Pages written (torn tails excluded — this is the durable count).
    pub pages: u64,
    /// Cells written.
    pub cells: u64,
    /// Total file bytes, header included.
    pub bytes: u64,
}

/// Streams cells into a new segment file, sealing pages as they fill.
pub struct SegmentWriter {
    file: BufWriter<FusedFile>,
    path: PathBuf,
    page_size: usize,
    page: Page,
    info: SegmentInfo,
}

impl SegmentWriter {
    /// Creates `path` (truncating any existing file) and writes the
    /// header immediately. Writes never trip a fuse (the production
    /// configuration); crash tests use [`SegmentWriter::create_fused`].
    ///
    /// # Errors
    ///
    /// I/O failures creating or writing the file.
    ///
    /// # Panics
    ///
    /// If `page_size` is out of range (validated by [`Page::new`]).
    pub fn create(
        path: &Path,
        segment_id: u64,
        schema_digest: [u8; 32],
        page_size: usize,
    ) -> Result<SegmentWriter, StoreError> {
        SegmentWriter::create_fused(
            path,
            segment_id,
            schema_digest,
            page_size,
            CrashFuse::unlimited(),
        )
    }

    /// As [`SegmentWriter::create`], but every disk unit (the create
    /// itself, each written byte, the final sync) is charged to `fuse`
    /// — the crash-injection entry point.
    ///
    /// # Errors
    ///
    /// I/O failures (including [`StoreError::Crashed`]) creating or
    /// writing the file.
    ///
    /// # Panics
    ///
    /// If `page_size` is out of range (validated by [`Page::new`]).
    pub fn create_fused(
        path: &Path,
        segment_id: u64,
        schema_digest: [u8; 32],
        page_size: usize,
        fuse: Arc<CrashFuse>,
    ) -> Result<SegmentWriter, StoreError> {
        let header = SegmentHeader {
            version: SEGMENT_VERSION,
            page_size: page_size as u32,
            segment_id,
            schema_digest,
        };
        let mut file = BufWriter::new(FusedFile::create(path, fuse)?);
        file.write_all(&header.to_bytes())?;
        Ok(SegmentWriter {
            file,
            path: path.to_path_buf(),
            page_size,
            page: Page::new(page_size),
            info: SegmentInfo {
                segment_id,
                bytes: SEGMENT_HEADER_LEN as u64,
                ..SegmentInfo::default()
            },
        })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The id this segment was created with.
    pub fn segment_id(&self) -> u64 {
        self.info.segment_id
    }

    /// Cells appended so far.
    pub fn cells(&self) -> u64 {
        self.info.cells + self.page.cell_count() as u64
    }

    /// Bytes of sealed pages written so far (the in-progress page is
    /// excluded — it is not durable yet).
    pub fn bytes_written(&self) -> u64 {
        self.info.bytes
    }

    /// Appends one cell, sealing the current page first if it is full.
    /// Returns the cell's `(page, slot)` coordinates inside this
    /// segment — the point-lookup index is built from these at write
    /// time instead of by re-scanning.
    ///
    /// # Errors
    ///
    /// [`StoreError::CellTooLarge`] if the cell cannot fit even an
    /// empty page; I/O failures writing a sealed page.
    pub fn append(&mut self, cell: &Cell) -> Result<(u64, u16), StoreError> {
        if !self.page.insert(cell) {
            self.seal_page()?;
            if !self.page.insert(cell) {
                return Err(StoreError::CellTooLarge {
                    len: cell.encoded_size(),
                    max: Page::max_cell_size(self.page_size),
                });
            }
        }
        // the in-progress page's index is the number of sealed pages
        Ok((self.info.pages, (self.page.cell_count() - 1) as u16))
    }

    fn seal_page(&mut self) -> Result<(), StoreError> {
        let page = std::mem::replace(&mut self.page, Page::new(self.page_size));
        if page.is_empty() {
            return Ok(());
        }
        self.info.cells += page.cell_count() as u64;
        let bytes = page.finalize();
        self.file.write_all(&bytes)?;
        self.info.pages += 1;
        self.info.bytes += bytes.len() as u64;
        Ok(())
    }

    /// Seals the trailing partial page, flushes, and syncs the file.
    ///
    /// # Errors
    ///
    /// I/O failures flushing or syncing.
    pub fn finish(mut self) -> Result<SegmentInfo, StoreError> {
        self.seal_page()?;
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        Ok(self.info)
    }
}

/// Reads a segment: header validation at open, then a streaming,
/// page-at-a-time cell iterator — a 10M-document corpus never needs to
/// be resident in memory.
pub struct SegmentReader {
    file: BufReader<File>,
    header: SegmentHeader,
}

impl SegmentReader {
    /// Opens `path` and validates the header (and, when given, that
    /// the segment belongs to the expected deployment).
    ///
    /// # Errors
    ///
    /// I/O failures, or any header validation failure from
    /// [`SegmentHeader::from_bytes`], or
    /// [`StoreError::SchemaDigestMismatch`].
    pub fn open(
        path: &Path,
        expect_digest: Option<&[u8; 32]>,
    ) -> Result<SegmentReader, StoreError> {
        let mut file = BufReader::new(File::open(path)?);
        let mut header_bytes = [0u8; SEGMENT_HEADER_LEN];
        let mut filled = 0;
        while filled < SEGMENT_HEADER_LEN {
            let n = file.read(&mut header_bytes[filled..])?;
            if n == 0 {
                return Err(StoreError::ShortHeader);
            }
            filled += n;
        }
        let header = SegmentHeader::from_bytes(&header_bytes)?;
        if let Some(expect) = expect_digest {
            if &header.schema_digest != expect {
                return Err(StoreError::SchemaDigestMismatch);
            }
        }
        Ok(SegmentReader { file, header })
    }

    /// The validated header.
    pub fn header(&self) -> &SegmentHeader {
        &self.header
    }

    /// Reads and checksums exactly one page, returning its cells in
    /// slot order — the point-lookup path. Nothing else in the segment
    /// is touched, so a `get` through the store's document index costs
    /// one page read regardless of segment size.
    ///
    /// # Errors
    ///
    /// I/O failures, a short read (the page does not exist or is a
    /// torn tail — indexed cells are always durable, so this is
    /// corruption from the index's point of view), or the page-level
    /// checksum/structure errors mapped to their segment coordinates.
    pub fn page_cells(&mut self, page: u64) -> Result<Vec<Cell>, StoreError> {
        let page_size = self.header.page_size as usize;
        let offset = SEGMENT_HEADER_LEN as u64 + page * page_size as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; page_size];
        let mut filled = 0;
        while filled < page_size {
            let n = self.file.read(&mut buf[filled..])?;
            if n == 0 {
                return Err(StoreError::Io(format!(
                    "segment {}: page {page} short ({filled} of {page_size} bytes)",
                    self.header.segment_id
                )));
            }
            filled += n;
        }
        Page::parse(&buf).map_err(|e| match e {
            PageError::Checksum => StoreError::PageChecksumMismatch {
                segment: self.header.segment_id,
                page,
            },
            PageError::Structure(what) => StoreError::CorruptPage {
                segment: self.header.segment_id,
                page,
                what,
            },
        })
    }

    /// Consumes the reader into a streaming cell iterator.
    pub fn cells(self) -> CellIter {
        let page_size = self.header.page_size as usize;
        let mut iter = CellIter {
            file: self.file,
            segment_id: self.header.segment_id,
            page_size,
            lookahead: None,
            pending: std::collections::VecDeque::new(),
            page_index: 0,
            pages_read: 0,
            torn_tail: false,
            done: false,
        };
        // prime the one-page lookahead so "is this the final page?" is
        // answerable when a checksum fails
        iter.lookahead = match iter.read_page() {
            Ok(buf) => buf,
            Err(e) => {
                iter.done = true;
                iter.pending.push_back(Err(e));
                None
            }
        };
        iter
    }
}

/// Streaming iterator over a segment's cells.
///
/// Yields `Result<Cell, StoreError>`; after exhaustion,
/// [`CellIter::torn_tail`] reports whether a torn final append was
/// skipped.
pub struct CellIter {
    file: BufReader<File>,
    segment_id: u64,
    page_size: usize,
    lookahead: Option<Vec<u8>>,
    pending: std::collections::VecDeque<Result<LocatedCell, StoreError>>,
    page_index: u64,
    pages_read: u64,
    torn_tail: bool,
    done: bool,
}

/// A cell paired with its `(page, slot)` coordinates inside the
/// segment — what [`CellIter::next_located`] yields and the store's
/// document index records at recovery time.
pub type LocatedCell = ((u64, u16), Cell);

impl CellIter {
    /// True iff a torn final page (partial or checksum-dead) was
    /// skipped at the end of the stream.
    pub fn torn_tail(&self) -> bool {
        self.torn_tail
    }

    /// Pages successfully parsed so far.
    pub fn pages_read(&self) -> u64 {
        self.pages_read
    }

    /// Reads the next full page, `None` at EOF. A partial trailing
    /// page marks the tail torn and reads as EOF.
    fn read_page(&mut self) -> Result<Option<Vec<u8>>, StoreError> {
        let mut buf = vec![0u8; self.page_size];
        let mut filled = 0;
        while filled < self.page_size {
            let n = self.file.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        if filled == 0 {
            return Ok(None);
        }
        if filled < self.page_size {
            // a torn append: fewer bytes than a page ever has
            self.torn_tail = true;
            return Ok(None);
        }
        Ok(Some(buf))
    }

    /// As `Iterator::next`, but each cell arrives with its `(page,
    /// slot)` coordinates inside the segment — what the store's
    /// document index records at recovery time.
    pub fn next_located(&mut self) -> Option<Result<LocatedCell, StoreError>> {
        loop {
            if let Some(item) = self.pending.pop_front() {
                return Some(item);
            }
            if self.done {
                return None;
            }
            let Some(buf) = self.lookahead.take() else {
                self.done = true;
                continue;
            };
            self.lookahead = match self.read_page() {
                Ok(next) => next,
                Err(e) => {
                    self.done = true;
                    self.pending.push_back(Err(e));
                    None
                }
            };
            let is_final = self.lookahead.is_none() && !self.done;
            match Page::parse(&buf) {
                Ok(cells) => {
                    self.pages_read += 1;
                    let page = self.page_index;
                    self.pending.extend(
                        cells
                            .into_iter()
                            .enumerate()
                            .map(|(slot, cell)| Ok(((page, slot as u16), cell))),
                    );
                }
                Err(PageError::Checksum) if is_final => {
                    // the checksum of the *last* page never landed: a
                    // torn append, skipped like a partial page
                    self.torn_tail = true;
                    self.done = true;
                }
                Err(PageError::Checksum) => {
                    self.done = true;
                    self.pending
                        .push_back(Err(StoreError::PageChecksumMismatch {
                            segment: self.segment_id,
                            page: self.page_index,
                        }));
                }
                Err(PageError::Structure(what)) => {
                    self.done = true;
                    self.pending.push_back(Err(StoreError::CorruptPage {
                        segment: self.segment_id,
                        page: self.page_index,
                        what,
                    }));
                }
            }
            self.page_index += 1;
        }
    }
}

impl Iterator for CellIter {
    type Item = Result<Cell, StoreError>;

    fn next(&mut self) -> Option<Result<Cell, StoreError>> {
        self.next_located().map(|item| item.map(|(_, cell)| cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("apks-segment-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("seg.apks")
    }

    fn put(id: u64, len: usize) -> Cell {
        Cell::Put {
            doc_id: id,
            payload: vec![(id % 251) as u8; len],
        }
    }

    #[test]
    fn header_roundtrip_and_rejections() {
        let h = SegmentHeader {
            version: SEGMENT_VERSION,
            page_size: 4096,
            segment_id: 42,
            schema_digest: [7u8; 32],
        };
        let bytes = h.to_bytes();
        assert_eq!(SegmentHeader::from_bytes(&bytes).unwrap(), h);
        // every single-bit flip in the checksummed region is caught
        for pos in 0..56 {
            let mut bad = bytes;
            bad[pos] ^= 0x10;
            assert!(SegmentHeader::from_bytes(&bad).is_err(), "flip at {pos}");
        }
    }

    #[test]
    fn write_read_many_pages() {
        let path = tmp("roundtrip");
        let digest = [3u8; 32];
        let mut w = SegmentWriter::create(&path, 5, digest, 256).unwrap();
        let cells: Vec<Cell> = (0..100).map(|i| put(i, 40)).collect();
        for c in &cells {
            w.append(c).unwrap();
        }
        let info = w.finish().unwrap();
        assert_eq!(info.cells, 100);
        assert!(info.pages > 1, "100 40-byte cells must span pages");

        let r = SegmentReader::open(&path, Some(&digest)).unwrap();
        assert_eq!(r.header().segment_id, 5);
        let mut iter = r.cells();
        let back: Vec<Cell> = iter.by_ref().map(|c| c.unwrap()).collect();
        assert_eq!(back, cells);
        assert!(!iter.torn_tail());
        assert_eq!(iter.pages_read(), info.pages);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_schema_digest_refused_at_open() {
        let path = tmp("digest");
        let w = SegmentWriter::create(&path, 1, [1u8; 32], 256).unwrap();
        w.finish().unwrap();
        assert_eq!(
            SegmentReader::open(&path, Some(&[2u8; 32])).err(),
            Some(StoreError::SchemaDigestMismatch)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn oversized_cell_refused() {
        let path = tmp("oversize");
        let mut w = SegmentWriter::create(&path, 1, [0u8; 32], 256).unwrap();
        let err = w.append(&put(1, 1000)).unwrap_err();
        assert!(matches!(err, StoreError::CellTooLarge { .. }), "{err:?}");
        std::fs::remove_file(&path).unwrap();
    }
}
