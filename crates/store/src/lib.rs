//! Paged on-disk storage engine for encrypted APKS indexes.
//!
//! The paper's cloud server (§IV) holds the encrypted PHR index and
//! scans it per query; at production scale that corpus cannot be an
//! in-memory `Vec` rebuilt per run. This crate gives it a durable,
//! streamable shape:
//!
//! * [`page`] — fixed-size **slotted pages**: a checksummed header, a
//!   slot directory growing forward, cell bodies growing backward from
//!   the page end (the classic SQLite layout). Every page carries a
//!   SHA-256 of its contents, so a single flipped bit is caught at the
//!   page that contains it, not as a whole-file failure.
//! * [`segment`] — **append-only segment files**: a fixed header
//!   (magic, format version, page size, segment id, schema digest,
//!   header checksum) followed by back-to-back pages. Segments are
//!   written once and never updated in place; a torn final append —
//!   a partial page, or a full-size page whose checksum never landed —
//!   is recognized at open time and skipped, never silently decoded.
//! * [`store`] — the [`PagedStore`] directory: an active segment
//!   receiving appends, sealed segments behind it, and **compaction**
//!   that merges sealed segments into one (latest cell per document
//!   wins, tombstones drop out) instead of rewriting the whole store.
//!
//! Everything decodes with the same discipline as `apks-wire`: counts
//! and offsets are validated against the bytes actually present
//! *before* any allocation, and malformed input surfaces a structured
//! [`StoreError`], never a panic.

pub mod crash;
pub mod page;
pub mod segment;
pub mod store;

pub use crash::{CrashFuse, CrashPoint, FusedFile};
pub use page::{Cell, Page, PageError, MAX_PAGE_SIZE, MIN_PAGE_SIZE, PAGE_HEADER_LEN};
pub use segment::{
    CellIter, SegmentHeader, SegmentInfo, SegmentReader, SegmentWriter, SEGMENT_HEADER_LEN,
    SEGMENT_MAGIC,
};
pub use store::{CellLocation, PagedStore, StoreConfig, StoreScan, StoreStats};

use core::fmt;

/// Why a store operation failed. Structured and non-panicking, like
/// `WireError` one layer up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// A seeded [`CrashFuse`] killed the process at this write — the
    /// store object is dead; recovery happens at the next
    /// [`PagedStore::open`].
    Crashed,
    /// A segment file ends before its fixed header does — the torn
    /// residue of a crash during segment creation (tolerated at store
    /// open for the newest segment only), or real truncation anywhere
    /// else.
    ShortHeader,
    /// A segment file did not start with [`SEGMENT_MAGIC`].
    BadMagic,
    /// The segment format version is unsupported.
    BadVersion(u32),
    /// The segment header's own checksum did not match — the header is
    /// damaged, nothing after it can be trusted.
    HeaderChecksumMismatch,
    /// The header declared a page size outside the supported range.
    BadPageSize(u32),
    /// A segment belongs to a different deployment (schema digest
    /// mismatch).
    SchemaDigestMismatch,
    /// A non-final page failed its checksum — interior corruption, not
    /// a torn tail.
    PageChecksumMismatch {
        /// Segment id the page lives in.
        segment: u64,
        /// Zero-based page index inside the segment.
        page: u64,
    },
    /// A page's slot directory or a cell inside it is structurally
    /// invalid despite a passing checksum (a writer bug).
    CorruptPage {
        /// Segment id the page lives in.
        segment: u64,
        /// Zero-based page index inside the segment.
        page: u64,
        /// What was wrong.
        what: &'static str,
    },
    /// A cell is too large to ever fit a page of the configured size.
    CellTooLarge {
        /// Encoded cell size.
        len: usize,
        /// Largest cell a page can hold.
        max: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store i/o error: {m}"),
            StoreError::Crashed => write!(f, "injected crash point reached"),
            StoreError::ShortHeader => write!(f, "segment shorter than its header"),
            StoreError::BadMagic => write!(f, "not a segment file (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported segment format version {v}"),
            StoreError::HeaderChecksumMismatch => {
                write!(f, "segment header checksum mismatch")
            }
            StoreError::BadPageSize(s) => write!(f, "unsupported page size {s}"),
            StoreError::SchemaDigestMismatch => {
                write!(
                    f,
                    "segment belongs to a different deployment (schema digest)"
                )
            }
            StoreError::PageChecksumMismatch { segment, page } => {
                write!(f, "checksum mismatch in segment {segment} page {page}")
            }
            StoreError::CorruptPage {
                segment,
                page,
                what,
            } => {
                write!(f, "corrupt page {page} in segment {segment}: {what}")
            }
            StoreError::CellTooLarge { len, max } => {
                write!(f, "cell of {len} bytes exceeds page capacity ({max})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        if crash::is_crash(&e) {
            StoreError::Crashed
        } else {
            StoreError::Io(e.to_string())
        }
    }
}
