//! Curve parameter contexts.
//!
//! A [`CurveParams`] bundles the `F_p` context, the cofactor, the group
//! generator and a fixed-base table for it, mirroring PBC's `pairing_t`.
//! Two cached sets are provided:
//!
//! * [`CurveParams::standard`] — 512-bit `p`, 160-bit `q` (the paper's
//!   80-bit-security type-A configuration),
//! * [`CurveParams::fast`] — 192-bit `p`, same `q`; identical algebra and
//!   operation counts per field op, much cheaper final exponentiation. Used
//!   by unit tests.
//!
//! Both are generated deterministically (fixed RNG seeds) so every build of
//! the workspace agrees on the parameters.

use crate::point::{G1Affine, G1Projective};
use apks_math::fp::{Fp, FpCtx};
use apks_math::fp2::{Fp2, Fp2Ops};
use apks_math::hash::hash_to_fp;
use apks_math::prime::TypeAParams;
use apks_math::{Fr, UintP};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// Width (bits) of each fixed-base window.
const COMB_WINDOW: usize = 4;
/// Number of windows covering a 160-bit scalar.
const COMB_WINDOWS: usize = 160usize.div_ceil(COMB_WINDOW);

/// A full pairing-parameter context.
#[derive(Debug)]
pub struct CurveParams {
    fp: FpCtx,
    type_a: TypeAParams,
    generator: G1Affine,
    gt_generator: OnceLock<Fp2>,
    /// `table[w][j] = [j · 2^{4w}] G` for `j ∈ [0, 16)`.
    comb_table: Vec<[G1Affine; 1 << COMB_WINDOW]>,
    /// Human-readable label ("standard-512", "fast-192").
    label: &'static str,
}

impl CurveParams {
    /// Builds a context from raw type-A parameters.
    pub fn from_type_a(type_a: TypeAParams, label: &'static str) -> Self {
        let fp = FpCtx::new(type_a.p);
        let generator = find_generator(&fp, &type_a.h);
        let comb_table = build_comb_table(&fp, &generator);
        CurveParams {
            fp,
            type_a,
            generator,
            gt_generator: OnceLock::new(),
            comb_table,
            label,
        }
    }

    /// The paper's configuration: 512-bit `p`, 160-bit `q`.
    pub fn standard() -> Arc<CurveParams> {
        static P: OnceLock<Arc<CurveParams>> = OnceLock::new();
        P.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0x41504b53_00000001); // "APKS"|1
            Arc::new(CurveParams::from_type_a(
                TypeAParams::generate(512, &mut rng),
                "standard-512",
            ))
        })
        .clone()
    }

    /// A reduced-size test configuration (192-bit `p`, same 160-bit `q`).
    pub fn fast() -> Arc<CurveParams> {
        static P: OnceLock<Arc<CurveParams>> = OnceLock::new();
        P.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0x41504b53_00000002); // "APKS"|2
            Arc::new(CurveParams::from_type_a(
                TypeAParams::generate(192, &mut rng),
                "fast-192",
            ))
        })
        .clone()
    }

    /// The base-field context.
    pub fn fp(&self) -> &FpCtx {
        &self.fp
    }

    /// The raw type-A parameters (`p`, `q`, `h`).
    pub fn type_a(&self) -> &TypeAParams {
        &self.type_a
    }

    /// The cofactor `h = (p+1)/q`.
    pub fn cofactor(&self) -> &UintP {
        &self.type_a.h
    }

    /// The label of this parameter set.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// The subgroup generator `G`.
    pub fn generator(&self) -> G1Affine {
        self.generator
    }

    /// `g_T = ê(G, G)`, the target-group generator.
    pub fn gt_generator(&self) -> Fp2 {
        *self
            .gt_generator
            .get_or_init(|| crate::pairing::pairing_fp2(self, &self.generator, &self.generator))
    }

    /// Scalar multiplication of an arbitrary point.
    pub fn mul(&self, p: &G1Affine, k: Fr) -> G1Affine {
        p.to_projective(&self.fp)
            .mul_scalar(&self.fp, k)
            .to_affine(&self.fp)
    }

    /// Fixed-base multiplication of the generator: `[k] G` via the comb
    /// table (≈ `COMB_WINDOWS` mixed additions, no doublings).
    pub fn mul_generator(&self, k: Fr) -> G1Projective {
        let bits = k.to_uint();
        let mut acc = G1Projective::identity(&self.fp);
        for w in 0..COMB_WINDOWS {
            let bitpos = w * COMB_WINDOW;
            let limb = bitpos / 64;
            let off = bitpos % 64;
            // windows never straddle limbs: 64 % COMB_WINDOW == 0
            let idx = (bits.0[limb] >> off) & ((1 << COMB_WINDOW) - 1);
            if idx != 0 {
                acc = acc.add_mixed(&self.fp, &self.comb_table[w][idx as usize]);
            }
        }
        acc
    }

    /// `F_{p²}` exponentiation of a `G_T` element by a scalar.
    pub fn gt_pow(&self, a: &Fp2, k: Fr) -> Fp2 {
        self.fp.fp2_pow(*a, &k.to_uint().0)
    }

    /// Hashes arbitrary bytes onto the order-`q` subgroup
    /// (try-and-increment, then cofactor clearing).
    pub fn hash_to_point(&self, domain: &str, data: &[u8]) -> G1Affine {
        let fp = &self.fp;
        for counter in 0u32..=255 {
            let mut input = Vec::with_capacity(data.len() + 4);
            input.extend_from_slice(&counter.to_le_bytes());
            input.extend_from_slice(data);
            let x = hash_to_fp(fp, domain, &input);
            let rhs = fp.add(fp.mul(fp.sqr(x), x), x);
            if let Some(y) = fp.sqrt(rhs) {
                let pt = G1Affine::new_unchecked(x, y);
                let cleared = clear_cofactor(fp, &pt, &self.type_a.h);
                if !cleared.is_identity(fp) {
                    return cleared.to_affine(fp);
                }
            }
        }
        unreachable!("hash-to-point failed 256 consecutive times");
    }
}

/// Multiplies by the cofactor `h` to land in the order-`q` subgroup.
fn clear_cofactor(fp: &FpCtx, p: &G1Affine, h: &UintP) -> G1Projective {
    let mut acc = G1Projective::identity(fp);
    let n = h.bits();
    for i in (0..n).rev() {
        acc = acc.double(fp);
        if h.bit(i) {
            acc = acc.add_mixed(fp, p);
        }
    }
    acc
}

/// Finds a deterministic subgroup generator.
fn find_generator(fp: &FpCtx, h: &UintP) -> G1Affine {
    for counter in 0u64.. {
        let x = hash_to_fp(fp, "apks:generator", &counter.to_le_bytes());
        let rhs = fp.add(fp.mul(fp.sqr(x), x), x);
        if let Some(y) = fp.sqrt(rhs) {
            let pt = G1Affine::new_unchecked(x, y);
            let cleared = clear_cofactor(fp, &pt, h);
            if !cleared.is_identity(fp) {
                return cleared.to_affine(fp);
            }
        }
    }
    unreachable!()
}

/// Precomputes `[j · 2^{4w}] G` for all windows and digits.
fn build_comb_table(fp: &FpCtx, g: &G1Affine) -> Vec<[G1Affine; 1 << COMB_WINDOW]> {
    let mut table = Vec::with_capacity(COMB_WINDOWS);
    let mut base = g.to_projective(fp);
    for _ in 0..COMB_WINDOWS {
        let mut row_proj = Vec::with_capacity(1 << COMB_WINDOW);
        row_proj.push(G1Projective::identity(fp));
        for j in 1..(1 << COMB_WINDOW) {
            let prev: G1Projective = row_proj[j - 1];
            row_proj.push(prev.add(fp, &base));
        }
        let affine = crate::point::batch_to_affine(fp, &row_proj);
        let mut row = [G1Affine::identity(); 1 << COMB_WINDOW];
        row.copy_from_slice(&affine);
        table.push(row);
        for _ in 0..COMB_WINDOW {
            base = base.double(fp);
        }
    }
    table
}

/// A sample of arbitrary-looking Fp elements — used by tests that need
/// deterministic non-structured field data.
pub fn sample_fp(params: &CurveParams, tag: u64) -> Fp {
    hash_to_fp(params.fp(), "apks:sample", &tag.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fast_params_consistent() {
        let params = CurveParams::fast();
        let fp = params.fp();
        assert!(params.generator().is_on_curve(fp));
        assert_eq!(params.type_a().p.bits(), 192);
        assert_eq!(params.label(), "fast-192");
    }

    #[test]
    fn mul_generator_matches_generic() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let mut rng = StdRng::seed_from_u64(70);
        for _ in 0..8 {
            let k = Fr::random(&mut rng);
            let fast = params.mul_generator(k).to_affine(fp);
            let slow = params.mul(&params.generator(), k);
            assert_eq!(fast, slow);
        }
        // edge scalars
        assert!(params.mul_generator(Fr::ZERO).is_identity(fp));
        assert_eq!(
            params.mul_generator(Fr::one()).to_affine(fp),
            params.generator()
        );
    }

    #[test]
    fn hash_to_point_on_subgroup() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let p = params.hash_to_point("test", b"alice");
        assert!(p.is_on_curve(fp));
        // [q]P == O
        let minus_one = Fr::ZERO - Fr::one();
        let qp = p
            .to_projective(fp)
            .mul_scalar(fp, minus_one)
            .add_mixed(fp, &p);
        assert!(qp.is_identity(fp));
        // deterministic and domain-separated
        assert_eq!(p, params.hash_to_point("test", b"alice"));
        assert_ne!(p, params.hash_to_point("test2", b"alice"));
    }
}
