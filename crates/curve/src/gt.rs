//! The pairing target group `G_T = μ_q ⊂ F_{p²}^*`.
//!
//! After the final exponentiation, pairing values live in the order-`q`
//! cyclotomic subgroup, where the Frobenius (conjugation) computes the
//! inverse for free: `a^p = a^{−1}` because `p ≡ −1 (mod q)`.

use crate::params::CurveParams;
use apks_math::fp2::{Fp2, Fp2Ops};
use apks_math::Fr;

/// An element of `G_T`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Gt(pub Fp2);

impl Gt {
    /// The identity element.
    pub fn identity(params: &CurveParams) -> Gt {
        Gt(params.fp().fp2_one())
    }

    /// True iff this is the identity.
    pub fn is_identity(&self, params: &CurveParams) -> bool {
        self.0 == params.fp().fp2_one()
    }

    /// Group operation.
    pub fn mul(&self, params: &CurveParams, rhs: &Gt) -> Gt {
        Gt(params.fp().fp2_mul(self.0, rhs.0))
    }

    /// Inversion — free conjugation in the cyclotomic subgroup.
    pub fn inverse(&self, params: &CurveParams) -> Gt {
        Gt(params.fp().fp2_conj(self.0))
    }

    /// Exponentiation by a scalar.
    pub fn pow(&self, params: &CurveParams, k: Fr) -> Gt {
        Gt(params.gt_pow(&self.0, k))
    }

    /// Canonical encoding (an `F_{p²}` encoding).
    pub fn to_bytes(&self, params: &CurveParams) -> Vec<u8> {
        params.fp().fp2_to_bytes(self.0)
    }

    /// Decodes an encoding; `None` if malformed.
    pub fn from_bytes(params: &CurveParams, bytes: &[u8]) -> Option<Gt> {
        params.fp().fp2_from_bytes(bytes).map(Gt)
    }

    /// Compressed encoding (`8·FP_LIMBS + 1` bytes — the paper's "65B in
    /// compressed form" for `G_T` elements at 512-bit `p`).
    ///
    /// Valid `G_T` elements are unitary (`c0² + c1² = 1` in `F_p[i]`), so
    /// the imaginary part is recoverable from the real part up to sign.
    pub fn to_bytes_compressed(&self, params: &CurveParams) -> Vec<u8> {
        let fp = params.fp();
        let mut out = fp.to_bytes(self.0.c0);
        out.push(2 | u8::from(fp.parity(self.0.c1)));
        out
    }

    /// Decodes a compressed encoding; `None` if malformed or not unitary.
    pub fn from_bytes_compressed(params: &CurveParams, bytes: &[u8]) -> Option<Gt> {
        let fp = params.fp();
        let n = 8 * apks_math::FP_LIMBS;
        if bytes.len() != n + 1 {
            return None;
        }
        let flag = bytes[n];
        if flag & !3 != 0 || flag & 2 == 0 {
            return None;
        }
        let c0 = fp.from_bytes(&bytes[..n])?;
        // c1² = 1 − c0²
        let rhs = fp.sub(fp.one(), fp.sqr(c0));
        let mut c1 = fp.sqrt(rhs)?;
        if fp.parity(c1) != (flag & 1 == 1) {
            c1 = fp.neg(c1);
        }
        Some(Gt(Fp2::new(c0, c1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::pairing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn inverse_is_conjugate() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(90);
        let g = params.generator();
        let e = pairing(&params, &g, &params.mul(&g, Fr::random(&mut rng)));
        let inv = e.inverse(&params);
        assert!(e.mul(&params, &inv).is_identity(&params));
    }

    #[test]
    fn pow_laws() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(91);
        let g = params.generator();
        let e = pairing(&params, &g, &g);
        let (a, b) = (Fr::random(&mut rng), Fr::random(&mut rng));
        let lhs = e.pow(&params, a).mul(&params, &e.pow(&params, b));
        let rhs = e.pow(&params, a + b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bytes_roundtrip() {
        let params = CurveParams::fast();
        let g = params.generator();
        let e = pairing(&params, &g, &g);
        let enc = e.to_bytes(&params);
        assert_eq!(Gt::from_bytes(&params, &enc), Some(e));
    }

    #[test]
    fn compressed_roundtrip() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(92);
        let g = params.generator();
        for _ in 0..4 {
            let e = pairing(&params, &g, &params.mul(&g, Fr::random(&mut rng)));
            let enc = e.to_bytes_compressed(&params);
            assert_eq!(enc.len(), 8 * apks_math::FP_LIMBS + 1);
            assert_eq!(Gt::from_bytes_compressed(&params, &enc), Some(e));
        }
    }
}
