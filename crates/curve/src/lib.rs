//! The pairing substrate: PBC-style *type A* supersingular curve.
//!
//! The paper's prototype runs on PBC's type-A parameters: the supersingular
//! curve `E : y² = x³ + x` over `F_p` with `p ≡ 3 (mod 4)`,
//! `#E(F_p) = p + 1 = h·q`, embedding degree 2, and the distortion map
//! `φ(x, y) = (−x, i·y)` turning the Tate pairing into a *symmetric*
//! pairing `ê : G × G → G_T ⊆ F_{p²}^*` on the order-`q` subgroup.
//!
//! This crate provides
//!
//! * [`CurveParams`] — a parameter context ([`CurveParams::standard`] is the
//!   512-bit/160-bit set matching the paper's 80-bit security level;
//!   [`CurveParams::fast`] is a smaller test set from the same family),
//! * [`G1Affine`] / [`G1Projective`] — the group law (Jacobian coordinates),
//!   scalar multiplication, hash-to-point, compression,
//! * [`pairing()`], [`multi_pairing`] — Tate pairing with denominator
//!   elimination; multi-pairing shares Miller squarings and the final
//!   exponentiation (this is what makes `Search` cost `n + 3` pairings),
//! * [`PreparedG1`] — pairing *preprocessing* (precomputed Miller line
//!   coefficients for a fixed first argument), the paper's
//!   "with preprocessing" mode (§VII-B.4),
//! * [`Gt`] — the target group.
//!
//! # Example
//!
//! ```
//! use apks_curve::{CurveParams, pairing};
//! use apks_math::Fr;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let params = CurveParams::fast();
//! let mut rng = StdRng::seed_from_u64(1);
//! let (a, b) = (Fr::random(&mut rng), Fr::random(&mut rng));
//! let g = params.generator();
//! let ga = params.mul(&g, a);
//! let gb = params.mul(&g, b);
//! // bilinearity: e(aG, bG) = e(G, G)^{ab}
//! let lhs = pairing(&params, &ga, &gb);
//! let rhs = pairing(&params, &g, &g).pow(&params, a * b);
//! assert_eq!(lhs, rhs);
//! ```

pub mod gt;
pub mod pairing;
pub mod params;
pub mod point;
pub mod prepared;

pub use gt::Gt;
pub use pairing::{final_exponentiation, multi_pairing, pairing, pairing_fp2, pairing_unreduced};
pub use params::CurveParams;
pub use point::{G1Affine, G1Projective};
pub use prepared::{
    multi_pairing_prepared, multi_pairing_prepared_many, pairing_prepared, PreparedG1,
};
