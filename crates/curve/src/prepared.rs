//! Pairing preprocessing — the paper's "with preprocessing" mode.
//!
//! PBC lets callers preprocess the first pairing argument; the paper reports
//! 5.5 ms per raw pairing vs 2.5 ms with preprocessing (§VII-B.4). The same
//! trick here: for a fixed `P`, the Miller loop's point arithmetic depends
//! only on `P`, so we precompute per-step line *coefficients* once. A
//! prepared pairing then only evaluates each stored line at `φ(Q)` (two
//! `F_p` multiplications) and accumulates.
//!
//! Stored line form: `l(Q) = (a + b·x_Q) + i·y_Q` — the imaginary
//! coefficient of an affine tangent/chord line is always 1, so it is
//! not stored and evaluation reads `y_Q` directly.

use crate::pairing::{final_exponentiation, MillerValue};
use crate::params::CurveParams;
use crate::point::G1Affine;
use apks_math::fp::{Fp, FpCtx};
use apks_math::fp2::{Fp2, Fp2Ops};
use apks_math::Fr;

/// One precomputed Miller step.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// A line with coefficients `(a, b)`; evaluation is
    /// `(a + b·x_Q) + i·y_Q`.
    Line { a: Fp, b: Fp },
    /// A squaring-only step (vertical line dropped at the loop tail).
    Skip,
}

/// A first pairing argument with its Miller lines precomputed.
#[derive(Clone, Debug)]
pub struct PreparedG1 {
    /// `(double-step line, optional add-step line)` per loop iteration.
    steps: Vec<(Step, Option<Step>)>,
    infinity: bool,
}

impl PreparedG1 {
    /// Preprocesses a point.
    pub fn new(params: &CurveParams, p: &G1Affine) -> Self {
        let fp = params.fp();
        if p.infinity {
            return PreparedG1 {
                steps: Vec::new(),
                infinity: true,
            };
        }
        let order = Fr::modulus();
        let nbits = order.bits();
        let mut steps = Vec::with_capacity(nbits - 1);

        // Affine walk with per-step inversion: preprocessing is a one-time
        // cost, and affine coefficients are what we must store anyway.
        let mut tx = p.x;
        let mut ty = p.y;
        let mut t_inf = false;
        for i in (0..nbits - 1).rev() {
            let dbl = if t_inf {
                Step::Skip
            } else {
                // tangent: λ = (3x²+1)/(2y); line c0 = λ(x_Q + x_T) − y_T,
                // so a = λ·x_T − y_T, b = λ.
                let num = fp.add(fp.add(fp.dbl(fp.sqr(tx)), fp.sqr(tx)), fp.one());
                let lambda = fp.mul(num, fp.inv(fp.dbl(ty)).expect("y ≠ 0"));
                let a = fp.sub(fp.mul(lambda, tx), ty);
                let step = Step::Line { a, b: lambda };
                let x3 = fp.sub(fp.sqr(lambda), fp.dbl(tx));
                let y3 = fp.sub(fp.mul(lambda, fp.sub(tx, x3)), ty);
                tx = x3;
                ty = y3;
                step
            };
            let add = if order.bit(i) && !t_inf {
                if tx == p.x {
                    t_inf = true;
                    Some(Step::Skip)
                } else {
                    let lambda = fp.mul(
                        fp.sub(ty, p.y),
                        fp.inv(fp.sub(tx, p.x)).expect("distinct x"),
                    );
                    let a = fp.sub(fp.mul(lambda, tx), ty);
                    let step = Step::Line { a, b: lambda };
                    let x3 = fp.sub(fp.sqr(lambda), fp.add(tx, p.x));
                    let y3 = fp.sub(fp.mul(lambda, fp.sub(tx, x3)), ty);
                    tx = x3;
                    ty = y3;
                    Some(step)
                }
            } else {
                None
            };
            steps.push((dbl, add));
        }
        PreparedG1 {
            steps,
            infinity: false,
        }
    }

    /// True iff the prepared point is the identity.
    pub fn is_infinity(&self) -> bool {
        self.infinity
    }

    fn eval_step(fp: &FpCtx, step: &Step, q: &G1Affine, f: Fp2) -> Fp2 {
        match step {
            Step::Skip => f,
            Step::Line { a, b } => {
                let c0 = fp.add(*a, fp.mul(*b, q.x));
                fp.fp2_mul(f, Fp2::new(c0, q.y))
            }
        }
    }
}

/// Pairing with a prepared first argument (unreduced).
pub fn pairing_prepared_unreduced(
    params: &CurveParams,
    prep: &PreparedG1,
    q: &G1Affine,
) -> MillerValue {
    let fp = params.fp();
    if prep.infinity || q.infinity {
        return MillerValue(fp.fp2_one());
    }
    let mut f = fp.fp2_one();
    for (dbl, add) in &prep.steps {
        f = fp.fp2_sqr(f);
        f = PreparedG1::eval_step(fp, dbl, q, f);
        if let Some(add) = add {
            f = PreparedG1::eval_step(fp, add, q, f);
        }
    }
    MillerValue(f)
}

/// Full pairing with a prepared first argument.
pub fn pairing_prepared(params: &CurveParams, prep: &PreparedG1, q: &G1Affine) -> crate::Gt {
    crate::Gt(final_exponentiation(
        params,
        pairing_prepared_unreduced(params, prep, q),
    ))
}

/// Product of prepared pairings with shared squarings and one final
/// exponentiation.
pub fn multi_pairing_prepared(
    params: &CurveParams,
    pairs: &[(&PreparedG1, G1Affine)],
) -> crate::Gt {
    let fp = params.fp();
    let live: Vec<&(&PreparedG1, G1Affine)> = pairs
        .iter()
        .filter(|(p, q)| !p.infinity && !q.infinity)
        .collect();
    if live.is_empty() {
        return crate::Gt(fp.fp2_one());
    }
    let nsteps = live[0].0.steps.len();
    debug_assert!(live.iter().all(|(p, _)| p.steps.len() == nsteps));
    let mut f = fp.fp2_one();
    for s in 0..nsteps {
        f = fp.fp2_sqr(f);
        for (prep, q) in &live {
            let (dbl, add) = &prep.steps[s];
            f = PreparedG1::eval_step(fp, dbl, q, f);
            if let Some(add) = add {
                f = PreparedG1::eval_step(fp, add, q, f);
            }
        }
    }
    crate::Gt(final_exponentiation(params, MillerValue(f)))
}

/// Several prepared multi-pairings evaluated in one lockstep Miller
/// walk: one accumulator and one final exponentiation *per group*, with
/// the step loop shared across groups.
///
/// Each group is a pair list as in [`multi_pairing_prepared`]; the
/// result at index `i` equals `multi_pairing_prepared(params,
/// groups[i])`. The wave scan uses this to evaluate every capability in
/// a batch against one document in a single pass over the loop
/// iterations, keeping all line coefficients for the step hot while
/// each group folds its own product.
pub fn multi_pairing_prepared_many(
    params: &CurveParams,
    groups: &[&[(&PreparedG1, G1Affine)]],
) -> Vec<crate::Gt> {
    let fp = params.fp();
    // per-group live pairs (identity on either side contributes 1)
    let live: Vec<Vec<&(&PreparedG1, G1Affine)>> = groups
        .iter()
        .map(|pairs| {
            pairs
                .iter()
                .filter(|(p, q)| !p.infinity && !q.infinity)
                .collect()
        })
        .collect();
    let nsteps = live
        .iter()
        .flat_map(|g| g.first())
        .map(|(p, _)| p.steps.len())
        .next()
        .unwrap_or(0);
    debug_assert!(live
        .iter()
        .all(|g| g.iter().all(|(p, _)| p.steps.len() == nsteps)));
    let mut acc: Vec<Fp2> = vec![fp.fp2_one(); groups.len()];
    for s in 0..nsteps {
        for (g, f) in live.iter().zip(acc.iter_mut()) {
            if g.is_empty() {
                continue;
            }
            let mut v = fp.fp2_sqr(*f);
            for (prep, q) in g {
                let (dbl, add) = &prep.steps[s];
                v = PreparedG1::eval_step(fp, dbl, q, v);
                if let Some(add) = add {
                    v = PreparedG1::eval_step(fp, add, q, v);
                }
            }
            *f = v;
        }
    }
    acc.into_iter()
        .map(|f| crate::Gt(final_exponentiation(params, MillerValue(f))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::{multi_pairing, pairing};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prepared_matches_plain() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(100);
        let g = params.generator();
        for _ in 0..3 {
            let p = params.mul(&g, Fr::random(&mut rng));
            let q = params.mul(&g, Fr::random(&mut rng));
            let prep = PreparedG1::new(&params, &p);
            assert_eq!(
                pairing_prepared(&params, &prep, &q),
                pairing(&params, &p, &q)
            );
        }
    }

    #[test]
    fn prepared_identity() {
        let params = CurveParams::fast();
        let g = params.generator();
        let prep = PreparedG1::new(&params, &G1Affine::identity());
        assert!(prep.is_infinity());
        assert!(pairing_prepared(&params, &prep, &g).is_identity(&params));
    }

    #[test]
    fn multi_prepared_matches_multi() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(101);
        let g = params.generator();
        let pts: Vec<(G1Affine, G1Affine)> = (0..3)
            .map(|_| {
                (
                    params.mul(&g, Fr::random(&mut rng)),
                    params.mul(&g, Fr::random(&mut rng)),
                )
            })
            .collect();
        let preps: Vec<PreparedG1> = pts
            .iter()
            .map(|(p, _)| PreparedG1::new(&params, p))
            .collect();
        let pairs: Vec<(&PreparedG1, G1Affine)> = preps
            .iter()
            .zip(pts.iter())
            .map(|(prep, (_, q))| (prep, *q))
            .collect();
        assert_eq!(
            multi_pairing_prepared(&params, &pairs),
            multi_pairing(&params, &pts)
        );
    }

    #[test]
    fn many_matches_per_group_multi() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(102);
        let g = params.generator();
        // three groups of different sizes, one containing an identity pair
        let mut groups_pts: Vec<Vec<(G1Affine, G1Affine)>> = (1..=3)
            .map(|n| {
                (0..n)
                    .map(|_| {
                        (
                            params.mul(&g, Fr::random(&mut rng)),
                            params.mul(&g, Fr::random(&mut rng)),
                        )
                    })
                    .collect()
            })
            .collect();
        groups_pts[2][1].1 = G1Affine::identity();
        let preps: Vec<Vec<PreparedG1>> = groups_pts
            .iter()
            .map(|pts| {
                pts.iter()
                    .map(|(p, _)| PreparedG1::new(&params, p))
                    .collect()
            })
            .collect();
        let pairs: Vec<Vec<(&PreparedG1, G1Affine)>> = preps
            .iter()
            .zip(&groups_pts)
            .map(|(ps, pts)| {
                ps.iter()
                    .zip(pts)
                    .map(|(prep, (_, q))| (prep, *q))
                    .collect()
            })
            .collect();
        let refs: Vec<&[(&PreparedG1, G1Affine)]> = pairs.iter().map(|g| g.as_slice()).collect();
        let many = multi_pairing_prepared_many(&params, &refs);
        assert_eq!(many.len(), 3);
        for (out, group) in many.iter().zip(&pairs) {
            assert_eq!(*out, multi_pairing_prepared(&params, group));
        }
    }

    #[test]
    fn many_handles_empty_and_all_identity_groups() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(103);
        let g = params.generator();
        let p = params.mul(&g, Fr::random(&mut rng));
        let q = params.mul(&g, Fr::random(&mut rng));
        let prep = PreparedG1::new(&params, &p);
        let prep_inf = PreparedG1::new(&params, &G1Affine::identity());
        let live: Vec<(&PreparedG1, G1Affine)> = vec![(&prep, q)];
        let dead: Vec<(&PreparedG1, G1Affine)> = vec![(&prep_inf, q)];
        let empty: Vec<(&PreparedG1, G1Affine)> = Vec::new();
        let out = multi_pairing_prepared_many(
            &params,
            &[live.as_slice(), dead.as_slice(), empty.as_slice()],
        );
        assert_eq!(out[0], pairing_prepared(&params, &prep, &q));
        assert!(out[1].is_identity(&params));
        assert!(out[2].is_identity(&params));
        assert!(multi_pairing_prepared_many(&params, &[]).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        // Scalars come straight from the generator, so `a == 0` / `b == 0`
        // exercise the identity branches too.
        #[test]
        fn prop_pairing_prepared_matches_pairing(a in any::<u64>(), b in any::<u64>()) {
            let params = CurveParams::fast();
            let g = params.generator();
            let p = params.mul(&g, Fr::from_u64(a));
            let q = params.mul(&g, Fr::from_u64(b));
            let prep = PreparedG1::new(&params, &p);
            prop_assert_eq!(
                pairing_prepared(&params, &prep, &q),
                pairing(&params, &p, &q)
            );
        }
    }
}
