//! The elliptic-curve group law on `E : y² = x³ + x` over `F_p`.
//!
//! Points of the order-`q` subgroup are the pairing groups `G₁ = G₂` of the
//! symmetric type-A pairing. Affine points are the wire format; Jacobian
//! projective coordinates (`x = X/Z²`, `y = Y/Z³`) carry all interior
//! arithmetic so that no inversion happens inside scalar multiplication or
//! the Miller loop.

use apks_math::fp::{Fp, FpCtx};
use apks_math::Fr;

/// A point in affine coordinates, or the point at infinity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct G1Affine {
    /// x-coordinate (meaningless when `infinity`).
    pub x: Fp,
    /// y-coordinate (meaningless when `infinity`).
    pub y: Fp,
    /// Marker for the identity element.
    pub infinity: bool,
}

impl G1Affine {
    /// Exact length of the canonical compressed encoding
    /// ([`G1Affine::to_bytes`]): `8·FP_LIMBS` bytes of `x` plus one
    /// flag byte — 65 bytes at 512-bit `p`, the paper's "65B in
    /// compressed form". Every wire-size formula in the workspace is
    /// expressed in this constant.
    pub const ENCODED_LEN: usize = 8 * apks_math::FP_LIMBS + 1;

    /// The identity element.
    pub fn identity() -> Self {
        G1Affine {
            x: Fp::default(),
            y: Fp::default(),
            infinity: true,
        }
    }

    /// Builds an affine point without checking curve membership.
    pub fn new_unchecked(x: Fp, y: Fp) -> Self {
        G1Affine {
            x,
            y,
            infinity: false,
        }
    }

    /// Checks `y² = x³ + x`.
    pub fn is_on_curve(&self, fp: &FpCtx) -> bool {
        if self.infinity {
            return true;
        }
        let y2 = fp.sqr(self.y);
        let x3 = fp.mul(fp.sqr(self.x), self.x);
        y2 == fp.add(x3, self.x)
    }

    /// Negation.
    pub fn neg(&self, fp: &FpCtx) -> Self {
        if self.infinity {
            *self
        } else {
            G1Affine {
                x: self.x,
                y: fp.neg(self.y),
                infinity: false,
            }
        }
    }

    /// Converts into Jacobian coordinates.
    pub fn to_projective(&self, fp: &FpCtx) -> G1Projective {
        if self.infinity {
            G1Projective::identity(fp)
        } else {
            G1Projective {
                x: self.x,
                y: self.y,
                z: fp.one(),
            }
        }
    }

    /// Compressed encoding: `8·FP_LIMBS` bytes of `x` plus one flag byte
    /// (`0` = infinity, else `2 | parity(y)`), i.e. 65 bytes at 512-bit `p`
    /// — matching the paper's "65B in compressed form".
    pub fn to_bytes(&self, fp: &FpCtx) -> Vec<u8> {
        let mut out = fp.to_bytes(self.x);
        if self.infinity {
            out.iter_mut().for_each(|b| *b = 0);
            out.push(0);
        } else {
            out.push(2 | u8::from(fp.parity(self.y)));
        }
        out
    }

    /// Decodes a compressed encoding; `None` if malformed or off-curve.
    pub fn from_bytes(fp: &FpCtx, bytes: &[u8]) -> Option<Self> {
        let n = 8 * apks_math::FP_LIMBS;
        if bytes.len() != n + 1 {
            return None;
        }
        let flag = bytes[n];
        if flag == 0 {
            if bytes[..n].iter().any(|&b| b != 0) {
                return None;
            }
            return Some(G1Affine::identity());
        }
        if flag & !3 != 0 || flag & 2 == 0 {
            return None;
        }
        let x = fp.from_bytes(&bytes[..n])?;
        let rhs = fp.add(fp.mul(fp.sqr(x), x), x);
        let mut y = fp.sqrt(rhs)?;
        if fp.parity(y) != (flag & 1 == 1) {
            y = fp.neg(y);
        }
        Some(G1Affine::new_unchecked(x, y))
    }
}

/// A point in Jacobian projective coordinates.
#[derive(Clone, Copy, Debug)]
pub struct G1Projective {
    /// X coordinate (`x = X/Z²`).
    pub x: Fp,
    /// Y coordinate (`y = Y/Z³`).
    pub y: Fp,
    /// Z coordinate; zero encodes the identity.
    pub z: Fp,
}

impl G1Projective {
    /// The identity element (`Z = 0`).
    pub fn identity(fp: &FpCtx) -> Self {
        G1Projective {
            x: fp.one(),
            y: fp.one(),
            z: fp.zero(),
        }
    }

    /// True iff this is the identity.
    pub fn is_identity(&self, fp: &FpCtx) -> bool {
        fp.is_zero(self.z)
    }

    /// Point doubling (`dbl-2007-bl` with `a = 1`).
    pub fn double(&self, fp: &FpCtx) -> Self {
        if self.is_identity(fp) || fp.is_zero(self.y) {
            return G1Projective::identity(fp);
        }
        let xx = fp.sqr(self.x);
        let yy = fp.sqr(self.y);
        let yyyy = fp.sqr(yy);
        let zz = fp.sqr(self.z);
        // S = 2((X+YY)² − XX − YYYY)
        let s = {
            let t = fp.sqr(fp.add(self.x, yy));
            fp.dbl(fp.sub(fp.sub(t, xx), yyyy))
        };
        // M = 3XX + a·ZZ², a = 1
        let m = fp.add(fp.add(fp.dbl(xx), xx), fp.sqr(zz));
        let x3 = fp.sub(fp.sqr(m), fp.dbl(s));
        let y3 = fp.sub(fp.mul(m, fp.sub(s, x3)), fp.mul_u64(yyyy, 8));
        // Z3 = (Y+Z)² − YY − ZZ = 2YZ
        let z3 = fp.sub(fp.sub(fp.sqr(fp.add(self.y, self.z)), yy), zz);
        G1Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (`madd-2007-bl`).
    pub fn add_mixed(&self, fp: &FpCtx, rhs: &G1Affine) -> Self {
        if rhs.infinity {
            return *self;
        }
        if self.is_identity(fp) {
            return rhs.to_projective(fp);
        }
        let zz = fp.sqr(self.z);
        let u2 = fp.mul(rhs.x, zz);
        let s2 = fp.mul(fp.mul(rhs.y, zz), self.z);
        let h = fp.sub(u2, self.x);
        let rr = fp.dbl(fp.sub(s2, self.y));
        if fp.is_zero(h) {
            if fp.is_zero(rr) {
                return self.double(fp);
            }
            return G1Projective::identity(fp);
        }
        let hh = fp.sqr(h);
        let i = fp.mul_u64(hh, 4);
        let j = fp.mul(h, i);
        let v = fp.mul(self.x, i);
        let x3 = fp.sub(fp.sub(fp.sqr(rr), j), fp.dbl(v));
        let y3 = fp.sub(fp.mul(rr, fp.sub(v, x3)), fp.dbl(fp.mul(self.y, j)));
        let z3 = fp.sub(fp.sub(fp.sqr(fp.add(self.z, h)), zz), hh);
        G1Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General projective addition.
    pub fn add(&self, fp: &FpCtx, rhs: &G1Projective) -> Self {
        if rhs.is_identity(fp) {
            return *self;
        }
        if self.is_identity(fp) {
            return *rhs;
        }
        // add-2007-bl
        let z1z1 = fp.sqr(self.z);
        let z2z2 = fp.sqr(rhs.z);
        let u1 = fp.mul(self.x, z2z2);
        let u2 = fp.mul(rhs.x, z1z1);
        let s1 = fp.mul(fp.mul(self.y, rhs.z), z2z2);
        let s2 = fp.mul(fp.mul(rhs.y, self.z), z1z1);
        let h = fp.sub(u2, u1);
        let rr = fp.dbl(fp.sub(s2, s1));
        if fp.is_zero(h) {
            if fp.is_zero(rr) {
                return self.double(fp);
            }
            return G1Projective::identity(fp);
        }
        let i = fp.sqr(fp.dbl(h));
        let j = fp.mul(h, i);
        let v = fp.mul(u1, i);
        let x3 = fp.sub(fp.sub(fp.sqr(rr), j), fp.dbl(v));
        let y3 = fp.sub(fp.mul(rr, fp.sub(v, x3)), fp.dbl(fp.mul(s1, j)));
        let z3 = fp.mul(fp.mul(fp.dbl(self.z), rhs.z), h);
        G1Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Negation.
    pub fn neg(&self, fp: &FpCtx) -> Self {
        G1Projective {
            x: self.x,
            y: fp.neg(self.y),
            z: self.z,
        }
    }

    /// Converts back to affine (one inversion).
    pub fn to_affine(&self, fp: &FpCtx) -> G1Affine {
        if self.is_identity(fp) {
            return G1Affine::identity();
        }
        let zinv = fp.inv(self.z).expect("nonzero z");
        let zinv2 = fp.sqr(zinv);
        let zinv3 = fp.mul(zinv2, zinv);
        G1Affine::new_unchecked(fp.mul(self.x, zinv2), fp.mul(self.y, zinv3))
    }

    /// Scalar multiplication by a scalar in `F_q` (width-4 wNAF).
    ///
    /// Not constant-time; this is a research reproduction, and the paper's
    /// PBC baseline is not constant-time either.
    pub fn mul_scalar(&self, fp: &FpCtx, k: Fr) -> G1Projective {
        if fp.is_zero(self.z) || k.is_zero() {
            return G1Projective::identity(fp);
        }
        let digits = wnaf4(&k.to_uint());
        // odd multiples P, 3P, 5P, 7P (covering |digit| ∈ {1,3,5,7})
        let two_p = self.double(fp);
        let mut table = Vec::with_capacity(4);
        table.push(*self);
        for i in 1..4 {
            let prev: G1Projective = table[i - 1];
            table.push(prev.add(fp, &two_p));
        }
        let table_aff = batch_to_affine(fp, &table);
        let mut acc = G1Projective::identity(fp);
        for &d in digits.iter().rev() {
            acc = acc.double(fp);
            if d > 0 {
                acc = acc.add_mixed(fp, &table_aff[(d as usize - 1) / 2]);
            } else if d < 0 {
                acc = acc.add_mixed(fp, &table_aff[((-d) as usize - 1) / 2].neg(fp));
            }
        }
        acc
    }

    /// Plain double-and-add scalar multiplication (reference oracle for
    /// the wNAF path; also used where the scalar is public and tiny).
    pub fn mul_scalar_binary(&self, fp: &FpCtx, k: Fr) -> G1Projective {
        let bits = k.to_uint();
        let n = bits.bits();
        let mut acc = G1Projective::identity(fp);
        if n == 0 || fp.is_zero(self.z) {
            return acc;
        }
        let base = self.to_affine(fp);
        for i in (0..n).rev() {
            acc = acc.double(fp);
            if bits.bit(i) {
                acc = acc.add_mixed(fp, &base);
            }
        }
        acc
    }
}

/// Width-4 non-adjacent form: digits in `{0, ±1, ±3, ±5, ±7}`, least
/// significant first.
fn wnaf4(scalar: &apks_math::UintR) -> Vec<i8> {
    let mut k = *scalar;
    let mut out = Vec::with_capacity(k.bits() + 1);
    while !k.is_zero() {
        if k.is_odd() {
            let window = (k.0[0] & 0xf) as i16; // low 4 bits
            let digit = if window >= 8 { window - 16 } else { window };
            out.push(digit as i8);
            if digit > 0 {
                let (d, _) = k.sub_borrow(&apks_math::Uint::from_u64(digit as u64));
                k = d;
            } else {
                let (s, _) = k.add_carry(&apks_math::Uint::from_u64((-digit) as u64));
                k = s;
            }
        } else {
            out.push(0);
        }
        k = k.shr1();
    }
    out
}

/// Batch conversion of Jacobian points to affine with a single inversion
/// (Montgomery's trick). The identity maps to the affine identity.
pub fn batch_to_affine(fp: &FpCtx, points: &[G1Projective]) -> Vec<G1Affine> {
    let n = points.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = fp.one();
    for pt in points {
        prefix.push(acc);
        if !fp.is_zero(pt.z) {
            acc = fp.mul(acc, pt.z);
        }
    }
    let mut inv = match fp.inv(acc) {
        Some(v) => v,
        None => fp.one(), // acc can only be 0 if some z==0 skipped; acc never 0 here
    };
    let mut out = vec![G1Affine::identity(); n];
    for i in (0..n).rev() {
        let pt = &points[i];
        if fp.is_zero(pt.z) {
            continue;
        }
        let zinv = fp.mul(inv, prefix[i]);
        inv = fp.mul(inv, pt.z);
        let zinv2 = fp.sqr(zinv);
        let zinv3 = fp.mul(zinv2, zinv);
        out[i] = G1Affine::new_unchecked(fp.mul(pt.x, zinv2), fp.mul(pt.y, zinv3));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CurveParams;
    use apks_math::Fr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generator_on_curve_and_order_q() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let g = params.generator();
        assert!(g.is_on_curve(fp));
        // [q]G = O
        let gq = g
            .to_projective(fp)
            .mul_scalar(fp, Fr::ZERO - Fr::one())
            .add_mixed(fp, &g);
        assert!(gq.is_identity(fp), "q·G must be the identity");
    }

    #[test]
    fn add_commutes_and_associates() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let mut rng = StdRng::seed_from_u64(60);
        let g = params.generator().to_projective(fp);
        let a = g.mul_scalar(fp, Fr::random(&mut rng));
        let b = g.mul_scalar(fp, Fr::random(&mut rng));
        let c = g.mul_scalar(fp, Fr::random(&mut rng));
        let ab = a.add(fp, &b).to_affine(fp);
        let ba = b.add(fp, &a).to_affine(fp);
        assert_eq!(ab, ba);
        let left = a.add(fp, &b).add(fp, &c).to_affine(fp);
        let right = a.add(fp, &b.add(fp, &c)).to_affine(fp);
        assert_eq!(left, right);
    }

    #[test]
    fn mixed_add_matches_general() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let mut rng = StdRng::seed_from_u64(61);
        let g = params.generator().to_projective(fp);
        let a = g.mul_scalar(fp, Fr::random(&mut rng));
        let b_scalar = Fr::random(&mut rng);
        let b = g.mul_scalar(fp, b_scalar);
        let b_aff = b.to_affine(fp);
        assert_eq!(
            a.add_mixed(fp, &b_aff).to_affine(fp),
            a.add(fp, &b).to_affine(fp)
        );
    }

    #[test]
    fn scalar_mul_distributes() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let mut rng = StdRng::seed_from_u64(62);
        let g = params.generator().to_projective(fp);
        let (a, b) = (Fr::random(&mut rng), Fr::random(&mut rng));
        let lhs = g.mul_scalar(fp, a + b).to_affine(fp);
        let rhs = g
            .mul_scalar(fp, a)
            .add(fp, &g.mul_scalar(fp, b))
            .to_affine(fp);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn wnaf_matches_binary_ladder() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let mut rng = StdRng::seed_from_u64(65);
        let g = params.generator().to_projective(fp);
        for _ in 0..10 {
            let k = Fr::random(&mut rng);
            assert_eq!(
                g.mul_scalar(fp, k).to_affine(fp),
                g.mul_scalar_binary(fp, k).to_affine(fp)
            );
        }
        // edge scalars
        for k in [Fr::ZERO, Fr::one(), Fr::from_u64(7), Fr::ZERO - Fr::one()] {
            assert_eq!(
                g.mul_scalar(fp, k).to_affine(fp),
                g.mul_scalar_binary(fp, k).to_affine(fp)
            );
        }
    }

    #[test]
    fn doubling_degenerate_cases() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let id = G1Projective::identity(fp);
        assert!(id.double(fp).is_identity(fp));
        let g = params.generator();
        // P + (−P) = O
        let p = g.to_projective(fp);
        let sum = p.add_mixed(fp, &g.neg(fp));
        assert!(sum.is_identity(fp));
    }

    #[test]
    fn compression_roundtrip() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let mut rng = StdRng::seed_from_u64(63);
        for _ in 0..5 {
            let p = params
                .generator()
                .to_projective(fp)
                .mul_scalar(fp, Fr::random(&mut rng))
                .to_affine(fp);
            let enc = p.to_bytes(fp);
            assert_eq!(enc.len(), 8 * apks_math::FP_LIMBS + 1);
            let q = G1Affine::from_bytes(fp, &enc).unwrap();
            assert_eq!(p, q);
        }
        let id = G1Affine::identity();
        let enc = id.to_bytes(fp);
        assert_eq!(G1Affine::from_bytes(fp, &enc).unwrap(), id);
    }

    #[test]
    fn invalid_encodings_rejected() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let n = 8 * apks_math::FP_LIMBS;
        // wrong length
        assert!(G1Affine::from_bytes(fp, &vec![0u8; n]).is_none());
        // bad flag bits
        let mut buf = params.generator().to_bytes(fp);
        buf[n] = 0x08;
        assert!(G1Affine::from_bytes(fp, &buf).is_none());
        // non-canonical x (x = p, not reduced)
        let mut buf = params.fp().modulus().to_le_bytes();
        buf.push(2);
        assert!(G1Affine::from_bytes(fp, &buf).is_none());
        // x with non-square x³+x must be rejected: search a small one
        let mut rejected = false;
        for v in 2u64..64 {
            let x = fp.from_u64(v);
            let rhs = fp.add(fp.mul(fp.sqr(x), x), x);
            if fp.sqrt(rhs).is_none() {
                let mut buf = fp.to_bytes(x);
                buf.push(2);
                assert!(G1Affine::from_bytes(fp, &buf).is_none());
                rejected = true;
                break;
            }
        }
        assert!(rejected, "expected to find a non-square x³+x");
        // infinity with nonzero x bytes is malformed
        let mut buf = vec![0u8; n + 1];
        buf[0] = 1;
        buf[n] = 0;
        assert!(G1Affine::from_bytes(fp, &buf).is_none());
    }

    #[test]
    fn two_torsion_point_not_in_subgroup_math() {
        // (0,0) is the 2-torsion point on y² = x³ + x; it is on the curve
        // but of order 2, never order q — the subgroup machinery must not
        // produce it.
        let params = CurveParams::fast();
        let fp = params.fp();
        let t = G1Affine::new_unchecked(fp.zero(), fp.zero());
        assert!(t.is_on_curve(fp));
        let doubled = t.to_projective(fp).double(fp);
        assert!(doubled.is_identity(fp), "2-torsion doubles to O");
        assert_ne!(params.generator(), t);
    }

    #[test]
    fn batch_to_affine_matches_individual() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let mut rng = StdRng::seed_from_u64(64);
        let g = params.generator().to_projective(fp);
        let pts: Vec<_> = (0..6)
            .map(|i| {
                if i == 3 {
                    G1Projective::identity(fp)
                } else {
                    g.mul_scalar(fp, Fr::random(&mut rng))
                }
            })
            .collect();
        let batch = batch_to_affine(fp, &pts);
        for (b, p) in batch.iter().zip(&pts) {
            assert_eq!(*b, p.to_affine(fp));
        }
    }
}
