//! The modified Tate pairing `ê(P, Q) = f_{q,P}(φ(Q))^{(p²−1)/q}`.
//!
//! `φ(x, y) = (−x, i·y)` is the distortion map; because the curve is
//! supersingular with embedding degree 2 and `F_{p²} = F_p[i]`, vertical
//! lines evaluate inside `F_p` and are annihilated by the final
//! exponentiation (*denominator elimination*), so the Miller loop only
//! multiplies in tangent/chord numerators.
//!
//! Two Miller-loop implementations are provided: a slow affine one used as
//! a test oracle, and the production Jacobian one (no inversions). The
//! group order `q = 2^159 + 2^17 + 1` has Hamming weight 3, so the loop is
//! 159 doubling steps and just 2 addition steps.

use crate::params::CurveParams;
use crate::point::G1Affine;
use apks_math::fp::{Fp, FpCtx};
use apks_math::fp2::{Fp2, Fp2Ops};
use apks_math::Fr;

/// The result of a Miller loop before final exponentiation.
///
/// Useful for product-of-pairings: multiply several unreduced values, then
/// call [`final_exponentiation`] once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MillerValue(pub Fp2);

/// Computes the full pairing and wraps it in [`crate::Gt`].
pub fn pairing(params: &CurveParams, p: &G1Affine, q: &G1Affine) -> crate::Gt {
    crate::Gt(pairing_fp2(params, p, q))
}

/// Computes the full pairing as a raw `F_{p²}` element.
pub fn pairing_fp2(params: &CurveParams, p: &G1Affine, q: &G1Affine) -> Fp2 {
    final_exponentiation(params, pairing_unreduced(params, p, q))
}

/// Runs only the Miller loop (no final exponentiation).
pub fn pairing_unreduced(params: &CurveParams, p: &G1Affine, q: &G1Affine) -> MillerValue {
    let fp = params.fp();
    if p.infinity || q.infinity {
        return MillerValue(fp.fp2_one());
    }
    MillerValue(miller_jacobian(fp, p, q))
}

/// Product of pairings `Π ê(Pᵢ, Qᵢ)` with shared Miller squarings and a
/// single final exponentiation.
///
/// This is what makes HPE decryption (= APKS `Search`) cost roughly one
/// Miller loop of work per coordinate plus *one* final exponentiation,
/// instead of `n + 3` independent pairings.
pub fn multi_pairing(params: &CurveParams, pairs: &[(G1Affine, G1Affine)]) -> crate::Gt {
    let fp = params.fp();
    let live: Vec<&(G1Affine, G1Affine)> = pairs
        .iter()
        .filter(|(p, q)| !p.infinity && !q.infinity)
        .collect();
    if live.is_empty() {
        return crate::Gt(fp.fp2_one());
    }

    let mut states: Vec<MillerState> = live.iter().map(|(p, _)| MillerState::new(fp, p)).collect();
    let mut f = fp.fp2_one();
    let order = Fr::modulus();
    let nbits = order.bits();
    for i in (0..nbits - 1).rev() {
        f = fp.fp2_sqr(f);
        for (state, (p, q)) in states.iter_mut().zip(live.iter()) {
            let l = state.double_step(fp, q);
            f = fp.fp2_mul(f, l);
            if order.bit(i) {
                if let Some(l) = state.add_step(fp, p, q) {
                    f = fp.fp2_mul(f, l);
                }
            }
        }
    }
    crate::Gt(final_exponentiation(params, MillerValue(f)))
}

/// Final exponentiation: `f^{(p²−1)/q} = (conj(f)/f)^{h}`-style two-stage
/// computation (`f^{p−1}` via Frobenius, then an `h`-power).
pub fn final_exponentiation(params: &CurveParams, value: MillerValue) -> Fp2 {
    let fp = params.fp();
    let f = value.0;
    if fp.fp2_is_zero(f) {
        // Cannot happen for valid inputs; map to the identity defensively.
        return fp.fp2_one();
    }
    // f^(p-1) = conj(f) * f^{-1}  (Frobenius is conjugation in Fp[i])
    let f_inv = fp.fp2_inv(f).expect("nonzero");
    let g = fp.fp2_mul(fp.fp2_conj(f), f_inv);
    // now raise to h = (p+1)/q
    fp.fp2_pow(g, &params.cofactor().0)
}

/// Mutable state of one Miller loop: the running point `T` in Jacobian
/// coordinates plus the cached `Z²`.
struct MillerState {
    x: Fp,
    y: Fp,
    z: Fp,
}

impl MillerState {
    fn new(fp: &FpCtx, p: &G1Affine) -> Self {
        MillerState {
            x: p.x,
            y: p.y,
            z: fp.one(),
        }
    }

    /// Doubling step: `T ← 2T`, returning the tangent line at `T`
    /// evaluated at `φ(Q)` (up to `F_p` factors).
    fn double_step(&mut self, fp: &FpCtx, q: &G1Affine) -> Fp2 {
        let (x, y, z) = (self.x, self.y, self.z);
        let xx = fp.sqr(x);
        let yy = fp.sqr(y);
        let yyyy = fp.sqr(yy);
        let zz = fp.sqr(z);
        let s = {
            let t = fp.sqr(fp.add(x, yy));
            fp.dbl(fp.sub(fp.sub(t, xx), yyyy))
        };
        let m = fp.add(fp.add(fp.dbl(xx), xx), fp.sqr(zz)); // 3X² + Z⁴ (a = 1)
        let x3 = fp.sub(fp.sqr(m), fp.dbl(s));
        let y3 = fp.sub(fp.mul(m, fp.sub(s, x3)), fp.mul_u64(yyyy, 8));
        let z3 = fp.sub(fp.sub(fp.sqr(fp.add(y, z)), yy), zz); // 2YZ

        // Tangent at T evaluated at φ(Q) = (−x_Q, i·y_Q), scaled by 2Y·Z⁶:
        //   l = i·y_Q − y_T + λ(x_Q + x_T)  ⇒
        //   c0 = M·X − 2YY + M·ZZ·x_Q,  c1 = Z3·ZZ·y_Q
        let mzz = fp.mul(m, zz);
        let c0 = fp.add(fp.sub(fp.mul(m, x), fp.dbl(yy)), fp.mul(mzz, q.x));
        let c1 = fp.mul(fp.mul(z3, zz), q.y);

        self.x = x3;
        self.y = y3;
        self.z = z3;
        Fp2::new(c0, c1)
    }

    /// Addition step: `T ← T + P`, returning the chord line through `T` and
    /// `P` evaluated at `φ(Q)`, or `None` when the line is vertical
    /// (`T = −P`, the final step of the loop) — vertical lines are
    /// denominator-eliminated.
    fn add_step(&mut self, fp: &FpCtx, p: &G1Affine, q: &G1Affine) -> Option<Fp2> {
        let (x1, y1, z1) = (self.x, self.y, self.z);
        let zz = fp.sqr(z1);
        let u2 = fp.mul(p.x, zz);
        let s2 = fp.mul(fp.mul(p.y, zz), z1);
        let h = fp.sub(u2, x1);
        let rr = fp.dbl(fp.sub(s2, y1));
        if fp.is_zero(h) {
            // T == ±P; for order-q inputs inside the loop this is T == −P
            // (the final vertical). Set T ← O and drop the line.
            self.x = fp.one();
            self.y = fp.one();
            self.z = fp.zero();
            return None;
        }
        let hh = fp.sqr(h);
        let i = fp.mul_u64(hh, 4);
        let j = fp.mul(h, i);
        let v = fp.mul(x1, i);
        let x3 = fp.sub(fp.sub(fp.sqr(rr), j), fp.dbl(v));
        let y3 = fp.sub(fp.mul(rr, fp.sub(v, x3)), fp.dbl(fp.mul(y1, j)));
        let z3 = fp.sub(fp.sub(fp.sqr(fp.add(z1, h)), zz), hh); // 2 Z1 H

        // Chord through T and P at φ(Q), scaled by 2Z³:
        //   c0 = Z3·y_P − rr·(x_Q + x_P),  c1 = −Z3·y_Q
        let c0 = fp.sub(fp.mul(z3, p.y), fp.mul(rr, fp.add(q.x, p.x)));
        let c1 = fp.neg(fp.mul(z3, q.y));

        self.x = x3;
        self.y = y3;
        self.z = z3;
        Some(Fp2::new(c0, c1))
    }
}

/// Production Miller loop in Jacobian coordinates.
fn miller_jacobian(fp: &FpCtx, p: &G1Affine, q: &G1Affine) -> Fp2 {
    let mut state = MillerState {
        x: p.x,
        y: p.y,
        z: fp.one(),
    };
    let mut f = fp.fp2_one();
    let order = Fr::modulus();
    let nbits = order.bits();
    for i in (0..nbits - 1).rev() {
        f = fp.fp2_sqr(f);
        let l = state.double_step(fp, q);
        f = fp.fp2_mul(f, l);
        if order.bit(i) {
            if let Some(l) = state.add_step(fp, p, q) {
                f = fp.fp2_mul(f, l);
            }
        }
    }
    f
}

/// Reference Miller loop in affine coordinates (slow; test oracle).
///
/// Exposed `#[doc(hidden)]` so integration tests and benches can compare.
#[doc(hidden)]
pub fn miller_affine_reference(fp: &FpCtx, p: &G1Affine, q: &G1Affine) -> Fp2 {
    let mut tx = p.x;
    let mut ty = p.y;
    let mut t_inf = false;
    let mut f = fp.fp2_one();
    let order = Fr::modulus();
    let nbits = order.bits();

    // line through (x1,y1) with slope λ, evaluated at φ(Q):
    //   c0 = λ(x_Q + x1) − y1, c1 = y_Q
    let line = |fp: &FpCtx, lambda: Fp, x1: Fp, y1: Fp| -> Fp2 {
        let c0 = fp.sub(fp.mul(lambda, fp.add(q.x, x1)), y1);
        Fp2::new(c0, q.y)
    };

    for i in (0..nbits - 1).rev() {
        f = fp.fp2_sqr(f);
        if !t_inf {
            // tangent
            let num = fp.add(fp.add(fp.dbl(fp.sqr(tx)), fp.sqr(tx)), fp.one()); // 3x²+1
            let den = fp.inv(fp.dbl(ty)).expect("y ≠ 0 for order-q points");
            let lambda = fp.mul(num, den);
            f = fp.fp2_mul(f, line(fp, lambda, tx, ty));
            // double T
            let x3 = fp.sub(fp.sqr(lambda), fp.dbl(tx));
            let y3 = fp.sub(fp.mul(lambda, fp.sub(tx, x3)), ty);
            tx = x3;
            ty = y3;
        }
        if order.bit(i) && !t_inf {
            if tx == p.x {
                // vertical: T == −P (or T == P, impossible mid-loop)
                t_inf = true;
            } else {
                let lambda = fp.mul(
                    fp.sub(ty, p.y),
                    fp.inv(fp.sub(tx, p.x)).expect("distinct x"),
                );
                f = fp.fp2_mul(f, line(fp, lambda, tx, ty));
                let x3 = fp.sub(fp.sqr(lambda), fp.add(tx, p.x));
                let y3 = fp.sub(fp.mul(lambda, fp.sub(tx, x3)), ty);
                tx = x3;
                ty = y3;
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use apks_math::Fr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn jacobian_matches_affine_reference() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let mut rng = StdRng::seed_from_u64(80);
        for _ in 0..3 {
            let p = params.mul(&params.generator(), Fr::random(&mut rng));
            let q = params.mul(&params.generator(), Fr::random(&mut rng));
            let fast =
                final_exponentiation(params.as_ref(), pairing_unreduced(params.as_ref(), &p, &q));
            let slow = final_exponentiation(
                params.as_ref(),
                MillerValue(miller_affine_reference(fp, &p, &q)),
            );
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn bilinearity() {
        let params = CurveParams::fast();
        let mut rng = StdRng::seed_from_u64(81);
        let g = params.generator();
        let (a, b) = (Fr::random(&mut rng), Fr::random(&mut rng));
        let ga = params.mul(&g, a);
        let gb = params.mul(&g, b);
        let e_ab = pairing_fp2(&params, &ga, &gb);
        let e_gg = pairing_fp2(&params, &g, &g);
        assert_eq!(e_ab, params.gt_pow(&e_gg, a * b));
        // e(aG, G) = e(G, aG) (symmetry)
        assert_eq!(pairing_fp2(&params, &ga, &g), pairing_fp2(&params, &g, &ga));
    }

    #[test]
    fn non_degeneracy() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let g = params.generator();
        let e = pairing_fp2(&params, &g, &g);
        assert_ne!(e, fp.fp2_one(), "pairing must be non-degenerate");
        // e has order q: e^q = 1
        let eq = fp.fp2_pow(e, &Fr::modulus().0);
        assert_eq!(eq, fp.fp2_one());
    }

    #[test]
    fn identity_inputs() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let g = params.generator();
        let id = G1Affine::identity();
        assert_eq!(pairing_fp2(&params, &id, &g), fp.fp2_one());
        assert_eq!(pairing_fp2(&params, &g, &id), fp.fp2_one());
    }

    #[test]
    fn multi_pairing_matches_product() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let mut rng = StdRng::seed_from_u64(82);
        let g = params.generator();
        let pairs: Vec<(G1Affine, G1Affine)> = (0..4)
            .map(|_| {
                (
                    params.mul(&g, Fr::random(&mut rng)),
                    params.mul(&g, Fr::random(&mut rng)),
                )
            })
            .collect();
        let multi = multi_pairing(&params, &pairs);
        let mut product = fp.fp2_one();
        for (p, q) in &pairs {
            product = fp.fp2_mul(product, pairing_fp2(&params, p, q));
        }
        assert_eq!(multi.0, product);
    }

    #[test]
    fn pairing_of_inverse() {
        let params = CurveParams::fast();
        let fp = params.fp();
        let mut rng = StdRng::seed_from_u64(83);
        let g = params.generator();
        let a = Fr::random(&mut rng);
        let ga = params.mul(&g, a);
        let ga_neg = ga.neg(fp);
        let e1 = pairing_fp2(&params, &ga, &g);
        let e2 = pairing_fp2(&params, &ga_neg, &g);
        assert_eq!(fp.fp2_mul(e1, e2), fp.fp2_one());
    }
}
