//! The schema definition DSL.
//!
//! One field per line; blank lines and `#` comments ignored:
//!
//! ```text
//! # PHR index schema
//! field age   numeric 0 127 4   d=2      # balanced numeric tree, branching 4
//! field sex   flat              d=1
//! field region tree(MA(East(Boston,Cambridge),West(Worcester,Springfield))) d=1
//! ```
//!
//! * `flat` — a single-dimension field;
//! * `numeric LO HI BRANCH` — a balanced numeric hierarchy over `[LO, HI]`;
//! * `tree(...)` — an explicit semantic hierarchy (labels may contain
//!   spaces; `(`, `)`, `,` delimit structure);
//! * `d=K` — the per-dimension OR budget.

use apks_core::hierarchy::Node;
use apks_core::schema::FieldKind;
use apks_core::{ApksError, Hierarchy, Schema};
use std::sync::Arc;

/// Maximum nesting depth accepted inside `tree(...)` — bounds the
/// recursive-descent parser's stack so a hostile schema file cannot
/// overflow it.
const MAX_TREE_DEPTH: usize = 64;

/// Largest `HI - LO + 1` domain accepted for `numeric` fields. The
/// hierarchy materializes one node per domain value, so this bound is a
/// memory bound, too.
const MAX_NUMERIC_DOMAIN: i64 = 1 << 20;

/// Parses the DSL into a schema.
///
/// # Errors
///
/// Returns [`ApksError::Parse`] with line context on malformed input, or
/// schema-validation errors from the builder.
pub fn parse_schema(text: &str) -> Result<Arc<Schema>, ApksError> {
    let mut builder = Schema::builder();
    let mut saw_field = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| ApksError::Parse(format!("line {}: {msg}", lineno + 1));
        let rest = line
            .strip_prefix("field ")
            .ok_or_else(|| err("expected `field <name> <kind> d=<K>`".into()))?;
        let mut parts = rest.split_whitespace().peekable();
        let name = parts
            .next()
            .ok_or_else(|| err("missing field name".into()))?
            .to_string();
        let kind = parts
            .next()
            .ok_or_else(|| err("missing field kind".into()))?
            .to_string();
        // everything else, re-joined (tree bodies may contain spaces)
        let tail: Vec<&str> = parts.collect();
        let (kind_args, d) = split_budget(&kind, &tail).map_err(err)?;

        if kind == "flat" {
            builder = builder.flat_field(name, d);
        } else if kind == "numeric" {
            let nums: Vec<i64> = kind_args
                .split_whitespace()
                .map(|t| t.parse::<i64>())
                .collect::<Result<_, _>>()
                .map_err(|_| err("numeric needs `LO HI BRANCH`".into()))?;
            if nums.len() != 3 {
                return Err(err("numeric needs exactly `LO HI BRANCH`".into()));
            }
            if nums[0] > nums[1] || nums[2] < 2 {
                return Err(err("numeric needs LO ≤ HI and BRANCH ≥ 2".into()));
            }
            match nums[1].checked_sub(nums[0]) {
                Some(span) if span < MAX_NUMERIC_DOMAIN => {}
                _ => {
                    return Err(err(format!(
                        "numeric domain [{}, {}] exceeds {MAX_NUMERIC_DOMAIN} values",
                        nums[0], nums[1]
                    )))
                }
            }
            builder = builder.hierarchical_field(
                name,
                Hierarchy::numeric(nums[0], nums[1], nums[2] as usize),
                d,
            );
        } else if let Some(body) = kind.strip_prefix("tree(") {
            // the tree body may have been split on spaces; re-join
            let mut full = body.to_string();
            if !kind_args.is_empty() {
                full.push(' ');
                full.push_str(&kind_args);
            }
            let full = full
                .strip_suffix(')')
                .ok_or_else(|| err("unterminated tree(...)".into()))?;
            let root = parse_tree(full).map_err(err)?;
            let h = Hierarchy::semantic(root)?;
            builder = builder.hierarchical_field(name, h, d);
        } else {
            return Err(err(format!("unknown field kind {kind:?}")));
        }
        saw_field = true;
    }
    if !saw_field {
        return Err(ApksError::Parse("schema has no `field` lines".into()));
    }
    builder.build()
}

/// Splits the trailing `d=K` token off and returns the remaining args
/// (joined by spaces) plus the budget.
fn split_budget(kind: &str, tail: &[&str]) -> Result<(String, usize), String> {
    let mut args: Vec<&str> = tail.to_vec();
    let budget_tok = match args.pop() {
        Some(t) if t.starts_with("d=") => t,
        Some(_) | None => {
            // maybe the kind itself carries it (e.g. `flat d=1` with kind
            // consumed separately) — then tail's last must be d=
            return Err(format!(
                "field {kind:?} is missing the trailing `d=K` budget"
            ));
        }
    };
    let d: usize = budget_tok[2..]
        .parse()
        .map_err(|_| format!("bad budget {budget_tok:?}"))?;
    Ok((args.join(" "), d))
}

/// Looks up field `name` in `schema` and returns its hierarchy.
///
/// The fallible counterpart of pattern-matching on
/// [`FieldKind::Hierarchical`]: CLI commands that need a hierarchy (e.g.
/// to resolve a subtree query) surface a parse error instead of crashing
/// when the schema file declared the field `flat`.
///
/// # Errors
///
/// [`ApksError::Parse`] when the field does not exist or is flat.
pub fn field_hierarchy<'a>(schema: &'a Schema, name: &str) -> Result<&'a Hierarchy, ApksError> {
    let field = schema
        .fields()
        .iter()
        .find(|f| f.name == name)
        .ok_or_else(|| ApksError::Parse(format!("schema has no field {name:?}")))?;
    match &field.kind {
        FieldKind::Hierarchical(h) => Ok(h),
        FieldKind::Flat => Err(ApksError::Parse(format!(
            "field {name:?} is flat — expected hierarchy"
        ))),
    }
}

/// Parses `Label(Child1,Child2(Grand1,Grand2),...)`.
fn parse_tree(text: &str) -> Result<Node, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let node = parse_node(&chars, &mut pos, 1)?;
    if pos != chars.len() {
        return Err(format!("trailing characters after tree at offset {pos}"));
    }
    Ok(node)
}

fn parse_node(chars: &[char], pos: &mut usize, depth: usize) -> Result<Node, String> {
    if depth > MAX_TREE_DEPTH {
        return Err(format!("tree nesting exceeds {MAX_TREE_DEPTH} levels"));
    }
    let mut label = String::new();
    while *pos < chars.len() && !"(),".contains(chars[*pos]) {
        label.push(chars[*pos]);
        *pos += 1;
    }
    let label = label.trim().to_string();
    if label.is_empty() {
        return Err(format!("empty label at offset {pos}", pos = *pos));
    }
    let mut children = Vec::new();
    if *pos < chars.len() && chars[*pos] == '(' {
        *pos += 1;
        loop {
            children.push(parse_node(chars, pos, depth + 1)?);
            match chars.get(*pos) {
                Some(',') => {
                    *pos += 1;
                }
                Some(')') => {
                    *pos += 1;
                    break;
                }
                _ => return Err("expected `,` or `)` in tree".into()),
            }
        }
    }
    Ok(Node {
        label,
        interval: None,
        children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_schema() {
        let text = "
            # PHR schema
            field age numeric 0 15 4 d=2
            field sex flat d=1
            field region tree(MA(East(Boston,Cambridge),West(Worcester,Springfield))) d=1
        ";
        let s = parse_schema(text).unwrap();
        assert_eq!(s.fields().len(), 3);
        assert_eq!(s.fields()[0].name, "age");
        // age tree: 16 → 4 → 1 → depth 3; region depth 3
        assert_eq!(s.m_prime(), 3 + 1 + 3);
    }

    #[test]
    fn tree_labels_with_spaces() {
        let text = "field region tree(MA(East MA(Boston),West MA(Worcester))) d=1";
        let s = parse_schema(text).unwrap();
        let h = field_hierarchy(&s, "region").unwrap();
        assert!(h.locate("East MA").is_some());
    }

    #[test]
    fn field_hierarchy_rejects_flat_and_missing_fields() {
        let s = parse_schema("field sex flat d=1\nfield age numeric 0 15 4 d=2").unwrap();
        assert!(field_hierarchy(&s, "age").is_ok());
        assert!(matches!(
            field_hierarchy(&s, "sex"),
            Err(ApksError::Parse(msg)) if msg.contains("flat")
        ));
        assert!(matches!(
            field_hierarchy(&s, "zip"),
            Err(ApksError::Parse(msg)) if msg.contains("no field")
        ));
    }

    #[test]
    fn deep_tree_nesting_is_an_error_not_a_stack_overflow() {
        let body = format!("{}B{}", "A(".repeat(500), ")".repeat(500));
        let text = format!("field x tree({body}) d=1");
        assert!(matches!(
            parse_schema(&text),
            Err(ApksError::Parse(msg)) if msg.contains("nesting")
        ));
    }

    #[test]
    fn huge_numeric_domain_rejected() {
        for bad in [
            "field age numeric 0 9223372036854775806 2 d=1",
            "field age numeric -9223372036854775808 9223372036854775807 2 d=1", // span overflows i64
            "field age numeric 0 1048576 2 d=1",                                // one past the cap
        ] {
            assert!(matches!(
                parse_schema(bad),
                Err(ApksError::Parse(msg)) if msg.contains("domain")
            ));
        }
        // at the cap still accepted *by the bound* (builder may still veto)
        assert!(parse_schema("field age numeric 0 1048575 2 d=1").is_ok());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "field",
            "field age",
            "field age flat",             // missing d=
            "field age numeric 0 15 d=1", // missing branch
            "field age numeric 15 0 4 d=1",
            "field x tree(A(B,C) d=1", // unbalanced parens
            "field x wat d=1",
            "notfield x flat d=1",
            "field x flat d=zero",
        ] {
            assert!(parse_schema(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unbalanced_tree_rejected_by_validation() {
        // leaf depths differ → Hierarchy::semantic refuses
        let text = "field x tree(A(B,C(D))) d=1";
        assert!(parse_schema(text).is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# hi\n\nfield a flat d=1 # trailing\n";
        assert!(parse_schema(text).is_ok());
    }
}
