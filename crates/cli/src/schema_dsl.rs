//! The schema definition DSL.
//!
//! One field per line; blank lines and `#` comments ignored:
//!
//! ```text
//! # PHR index schema
//! field age   numeric 0 127 4   d=2      # balanced numeric tree, branching 4
//! field sex   flat              d=1
//! field region tree(MA(East(Boston,Cambridge),West(Worcester,Springfield))) d=1
//! ```
//!
//! * `flat` — a single-dimension field;
//! * `numeric LO HI BRANCH` — a balanced numeric hierarchy over `[LO, HI]`;
//! * `tree(...)` — an explicit semantic hierarchy (labels may contain
//!   spaces; `(`, `)`, `,` delimit structure);
//! * `d=K` — the per-dimension OR budget.

use apks_core::hierarchy::Node;
use apks_core::{ApksError, Hierarchy, Schema};
use std::sync::Arc;

/// Parses the DSL into a schema.
///
/// # Errors
///
/// Returns [`ApksError::Parse`] with line context on malformed input, or
/// schema-validation errors from the builder.
pub fn parse_schema(text: &str) -> Result<Arc<Schema>, ApksError> {
    let mut builder = Schema::builder();
    let mut saw_field = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| ApksError::Parse(format!("line {}: {msg}", lineno + 1));
        let rest = line
            .strip_prefix("field ")
            .ok_or_else(|| err("expected `field <name> <kind> d=<K>`".into()))?;
        let mut parts = rest.split_whitespace().peekable();
        let name = parts
            .next()
            .ok_or_else(|| err("missing field name".into()))?
            .to_string();
        let kind = parts
            .next()
            .ok_or_else(|| err("missing field kind".into()))?
            .to_string();
        // everything else, re-joined (tree bodies may contain spaces)
        let tail: Vec<&str> = parts.collect();
        let (kind_args, d) = split_budget(&kind, &tail).map_err(err)?;

        if kind == "flat" {
            builder = builder.flat_field(name, d);
        } else if kind == "numeric" {
            let nums: Vec<i64> = kind_args
                .split_whitespace()
                .map(|t| t.parse::<i64>())
                .collect::<Result<_, _>>()
                .map_err(|_| err("numeric needs `LO HI BRANCH`".into()))?;
            if nums.len() != 3 {
                return Err(err("numeric needs exactly `LO HI BRANCH`".into()));
            }
            if nums[0] > nums[1] || nums[2] < 2 {
                return Err(err("numeric needs LO ≤ HI and BRANCH ≥ 2".into()));
            }
            builder = builder.hierarchical_field(
                name,
                Hierarchy::numeric(nums[0], nums[1], nums[2] as usize),
                d,
            );
        } else if let Some(body) = kind.strip_prefix("tree(") {
            // the tree body may have been split on spaces; re-join
            let mut full = body.to_string();
            if !kind_args.is_empty() {
                full.push(' ');
                full.push_str(&kind_args);
            }
            let full = full
                .strip_suffix(')')
                .ok_or_else(|| err("unterminated tree(...)".into()))?;
            let root = parse_tree(full).map_err(err)?;
            let h = Hierarchy::semantic(root)?;
            builder = builder.hierarchical_field(name, h, d);
        } else {
            return Err(err(format!("unknown field kind {kind:?}")));
        }
        saw_field = true;
    }
    if !saw_field {
        return Err(ApksError::Parse("schema has no `field` lines".into()));
    }
    builder.build()
}

/// Splits the trailing `d=K` token off and returns the remaining args
/// (joined by spaces) plus the budget.
fn split_budget(kind: &str, tail: &[&str]) -> Result<(String, usize), String> {
    let mut args: Vec<&str> = tail.to_vec();
    let budget_tok = match args.pop() {
        Some(t) if t.starts_with("d=") => t,
        Some(_) | None => {
            // maybe the kind itself carries it (e.g. `flat d=1` with kind
            // consumed separately) — then tail's last must be d=
            return Err(format!("field {kind:?} is missing the trailing `d=K` budget"));
        }
    };
    let d: usize = budget_tok[2..]
        .parse()
        .map_err(|_| format!("bad budget {budget_tok:?}"))?;
    Ok((args.join(" "), d))
}

/// Parses `Label(Child1,Child2(Grand1,Grand2),...)`.
fn parse_tree(text: &str) -> Result<Node, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let node = parse_node(&chars, &mut pos)?;
    if pos != chars.len() {
        return Err(format!("trailing characters after tree at offset {pos}"));
    }
    Ok(node)
}

fn parse_node(chars: &[char], pos: &mut usize) -> Result<Node, String> {
    let mut label = String::new();
    while *pos < chars.len() && !"(),".contains(chars[*pos]) {
        label.push(chars[*pos]);
        *pos += 1;
    }
    let label = label.trim().to_string();
    if label.is_empty() {
        return Err(format!("empty label at offset {pos}", pos = *pos));
    }
    let mut children = Vec::new();
    if *pos < chars.len() && chars[*pos] == '(' {
        *pos += 1;
        loop {
            children.push(parse_node(chars, pos)?);
            match chars.get(*pos) {
                Some(',') => {
                    *pos += 1;
                }
                Some(')') => {
                    *pos += 1;
                    break;
                }
                _ => return Err("expected `,` or `)` in tree".into()),
            }
        }
    }
    Ok(Node {
        label,
        interval: None,
        children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_schema() {
        let text = "
            # PHR schema
            field age numeric 0 15 4 d=2
            field sex flat d=1
            field region tree(MA(East(Boston,Cambridge),West(Worcester,Springfield))) d=1
        ";
        let s = parse_schema(text).unwrap();
        assert_eq!(s.fields().len(), 3);
        assert_eq!(s.fields()[0].name, "age");
        // age tree: 16 → 4 → 1 → depth 3; region depth 3
        assert_eq!(s.m_prime(), 3 + 1 + 3);
    }

    #[test]
    fn tree_labels_with_spaces() {
        let text = "field region tree(MA(East MA(Boston),West MA(Worcester))) d=1";
        let s = parse_schema(text).unwrap();
        let apks_core::schema::FieldKind::Hierarchical(h) = &s.fields()[0].kind else {
            panic!("expected hierarchy");
        };
        assert!(h.locate("East MA").is_some());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "field",
            "field age",
            "field age flat",              // missing d=
            "field age numeric 0 15 d=1",  // missing branch
            "field age numeric 15 0 4 d=1",
            "field x tree(A(B,C) d=1",     // unbalanced parens
            "field x wat d=1",
            "notfield x flat d=1",
            "field x flat d=zero",
        ] {
            assert!(parse_schema(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unbalanced_tree_rejected_by_validation() {
        // leaf depths differ → Hierarchy::semantic refuses
        let text = "field x tree(A(B,C(D))) d=1";
        assert!(parse_schema(text).is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# hi\n\nfield a flat d=1 # trailing\n";
        assert!(parse_schema(text).is_ok());
    }
}
