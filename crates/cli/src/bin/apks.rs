//! The `apks` binary: forwards the process arguments to the library
//! dispatcher and maps errors to exit code 1.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    if let Err(e) = apks_cli::run(&args, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
