//! The `apks` command-line tool.
//!
//! A thin, scriptable front end over the library: define a schema in a
//! small text DSL, create a deployment (keys + schema in one file),
//! encrypt record indexes, issue/delegate capabilities, and search — all
//! from the shell. The heavy lifting lives in library functions here so
//! the whole command surface is unit-testable; `src/bin/apks.rs` only
//! forwards `std::env::args`.
//!
//! ```text
//! apks setup --schema phr.schema --out deploy.apks [--plus] [--curve standard]
//! apks inspect deploy.apks
//! apks gen-index --deploy deploy.apks --record "age=25,sex=female" --out alice.idx
//! apks gen-cap --deploy deploy.apks --query "age in [16,31] and sex = female" --out cap.bin
//! apks search --deploy deploy.apks --cap cap.bin alice.idx bob.idx
//! apks demo
//! ```

pub mod commands;
pub mod record;
pub mod schema_dsl;

pub use commands::{run, CliError};
