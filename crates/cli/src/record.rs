//! Record and query text helpers for the CLI.
//!
//! Records are written `field=value,field=value,…` in schema field order
//! or by name; values that parse as integers become numeric.

use apks_core::{ApksError, FieldValue, Record, Schema};
use std::collections::HashMap;

/// Parses `field=value,…` against a schema into a [`Record`]
/// (schema field order; all fields required).
///
/// # Errors
///
/// Fails on unknown/duplicate/missing fields or empty values.
pub fn parse_record(schema: &Schema, text: &str) -> Result<Record, ApksError> {
    let mut by_name: HashMap<String, FieldValue> = HashMap::new();
    for part in text.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, value) = part
            .split_once('=')
            .ok_or_else(|| ApksError::Parse(format!("expected field=value, got {part:?}")))?;
        let name = name.trim();
        let value = value.trim();
        if value.is_empty() {
            return Err(ApksError::Parse(format!("empty value for {name:?}")));
        }
        // verify the field exists
        schema.field_index(name)?;
        let fv = match value.parse::<i64>() {
            Ok(n) => FieldValue::num(n),
            Err(_) => FieldValue::text(value),
        };
        if by_name.insert(name.to_string(), fv).is_some() {
            return Err(ApksError::Parse(format!("duplicate field {name:?}")));
        }
    }
    let mut values = Vec::with_capacity(schema.fields().len());
    for f in schema.fields() {
        let v = by_name
            .remove(&f.name)
            .ok_or_else(|| ApksError::Parse(format!("record is missing field {:?}", f.name)))?;
        values.push(v);
    }
    Ok(Record::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apks_core::Schema;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::builder()
            .flat_field("age", 1)
            .flat_field("sex", 1)
            .build()
            .unwrap()
    }

    #[test]
    fn parses_in_any_order() {
        let s = schema();
        let r = parse_record(&s, "sex=female, age=25").unwrap();
        assert_eq!(r.values[0], FieldValue::num(25));
        assert_eq!(r.values[1], FieldValue::text("female"));
    }

    #[test]
    fn numeric_detection() {
        let s = schema();
        let r = parse_record(&s, "age=-3,sex=07b").unwrap();
        assert_eq!(r.values[0], FieldValue::num(-3));
        assert_eq!(r.values[1], FieldValue::text("07b"));
    }

    #[test]
    fn rejects_bad_records() {
        let s = schema();
        assert!(parse_record(&s, "age=25").is_err()); // missing sex
        assert!(parse_record(&s, "age=25,age=26,sex=f").is_err()); // dup
        assert!(parse_record(&s, "age=25,zodiac=leo,sex=f").is_err()); // unknown
        assert!(parse_record(&s, "age 25,sex=f").is_err()); // no '='
        assert!(parse_record(&s, "age=,sex=f").is_err()); // empty
    }
}
