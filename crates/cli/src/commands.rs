//! Command dispatch and implementations.

use crate::record::parse_record;
use crate::schema_dsl::parse_schema;
use apks_core::persist::{describe_schema, SavedDeployment};
use apks_core::{proxy_transform, ApksError, Capability, EncryptedIndex, Query, QueryPolicy};
use apks_hpe::ProxyTransformKey;
use apks_math::encode::{Reader, Writer};
use core::fmt;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::Path;

/// CLI errors (message + non-zero exit).
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ApksError> for CliError {
    fn from(e: ApksError) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io error: {e}"))
    }
}

/// Minimal flag parser: `--name value` options plus positional arguments.
struct Args {
    options: Vec<(String, String)>,
    flags: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, CliError> {
        let mut options = Vec::new();
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                // boolean flags take no value
                if matches!(
                    name,
                    "plus" | "finalize" | "points" | "json" | "overload" | "batch" | "replication"
                ) {
                    flags.push(name.to_string());
                } else {
                    i += 1;
                    let value = args
                        .get(i)
                        .ok_or_else(|| CliError(format!("--{name} needs a value")))?;
                    options.push((name.to_string(), value.clone()));
                }
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Ok(Args {
            options,
            flags,
            positional,
        })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError(format!("missing required option --{name}")))
    }

    fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

const USAGE: &str = "\
usage: apks <command> [options]

commands:
  setup      --schema <file> --out <deploy> [--plus] [--curve fast|standard] [--seed N]
  inspect    <deploy>
  gen-index  --deploy <deploy> --record \"f=v,...\" --out <file> [--seed N]
  gen-cap    --deploy <deploy> --query \"...\" --out <file> [--min-dims N] [--finalize] [--seed N]
  delegate   --deploy <deploy> --cap <file> --query \"...\" --out <file> [--seed N]
  search     --deploy <deploy> --cap <file> <index-file>...
  transform  --deploy <deploy> --in <partial-index> --out <file>   (APKS+ proxy step)
  stats      [--docs N] [--threads N] [--seed N] [--json] [--overload] [--batch] [--replication]   (scan an in-memory corpus, print telemetry)
  store-stats --dir <path> [--json]   (inspect an on-disk paged segment store)
  wire-sizes [--seed N]   (print the canonical wire size of every protocol type)
  demo       [--seed N]
";

/// Entry point: dispatches on `args[0]` (the command).
///
/// # Errors
///
/// Returns a printable error; the binary maps it to exit code 1.
pub fn run(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError(USAGE.into()));
    };
    let parsed = Args::parse(rest)?;
    match cmd.as_str() {
        "setup" => cmd_setup(&parsed, out),
        "inspect" => cmd_inspect(&parsed, out),
        "gen-index" => cmd_gen_index(&parsed, out),
        "gen-cap" => cmd_gen_cap(&parsed, out),
        "delegate" => cmd_delegate(&parsed, out),
        "search" => cmd_search(&parsed, out),
        "transform" => cmd_transform(&parsed, out),
        "stats" => cmd_stats(&parsed, out),
        "store-stats" => cmd_store_stats(&parsed, out),
        "wire-sizes" => cmd_wire_sizes(&parsed, out),
        "demo" => cmd_demo(&parsed, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

fn rng_from(args: &Args) -> StdRng {
    match args.get("seed").and_then(|s| s.parse().ok()) {
        Some(seed) => StdRng::seed_from_u64(seed),
        None => StdRng::from_entropy(),
    }
}

fn load_deployment(path: &str) -> Result<(apks_core::ApksSystem, SavedDeployment), CliError> {
    let bytes = fs::read(path)?;
    SavedDeployment::from_bytes(&bytes).map_err(Into::into)
}

fn write_file(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, bytes)?;
    Ok(())
}

fn cmd_setup(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let schema_path = args.require("schema")?;
    let out_path = args.require("out")?;
    let schema_text = fs::read_to_string(schema_path)?;
    let schema = parse_schema(&schema_text)?;
    let params = match args.get("curve").unwrap_or("fast") {
        "fast" => apks_curve::CurveParams::fast(),
        "standard" => apks_curve::CurveParams::standard(),
        other => return Err(CliError(format!("unknown curve {other:?}"))),
    };
    let system = apks_core::ApksSystem::new(params.clone(), schema);
    let mut rng = rng_from(args);
    let saved = if args.has_flag("plus") {
        let (pk, mk) = system.setup_plus(&mut rng);
        SavedDeployment::new_plus(&system, &pk, &mk)
    } else {
        let (pk, msk) = system.setup(&mut rng);
        SavedDeployment::new(&system, &pk, Some(&msk))
    };
    let bytes = saved.to_bytes(&params);
    write_file(out_path, &bytes)?;
    writeln!(
        out,
        "deployment written to {out_path} ({} bytes, n = {}, curve {})",
        bytes.len(),
        system.n(),
        params.label()
    )?;
    Ok(())
}

fn cmd_inspect(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError("inspect needs a deployment file".into()))?;
    let (system, saved) = load_deployment(path)?;
    writeln!(out, "curve:   {}", saved.curve_label)?;
    writeln!(out, "n:       {} (vector length)", system.n())?;
    writeln!(
        out,
        "mode:    {}",
        if saved.blinding.is_some() {
            "APKS+ (query private)"
        } else {
            "APKS"
        }
    )?;
    writeln!(
        out,
        "keys:    public{}",
        if saved.msk.is_some() { " + master" } else { "" }
    )?;
    writeln!(out, "fields:")?;
    for line in describe_schema(system.schema()) {
        writeln!(out, "  - {line}")?;
    }
    Ok(())
}

fn cmd_gen_index(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (system, saved) = load_deployment(args.require("deploy")?)?;
    let record = parse_record(system.schema(), args.require("record")?)?;
    let out_path = args.require("out")?;
    let mut rng = rng_from(args);
    let idx = system.gen_index(&saved.pk, &record, &mut rng)?;
    let mut w = Writer::new();
    idx.encode(system.params(), &mut w);
    let bytes = w.finish();
    write_file(out_path, &bytes)?;
    let note = if saved.blinding.is_some() {
        " (partial — requires proxy transform before it is searchable)"
    } else {
        ""
    };
    writeln!(
        out,
        "index written to {out_path} ({} bytes){note}",
        bytes.len()
    )?;
    Ok(())
}

fn cmd_gen_cap(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (system, saved) = load_deployment(args.require("deploy")?)?;
    let msk = saved
        .msk
        .as_ref()
        .ok_or_else(|| CliError("this deployment file has no master key".into()))?;
    let query = Query::parse(args.require("query")?)?;
    let out_path = args.require("out")?;
    let policy = QueryPolicy {
        min_dimensions: args
            .get("min-dims")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1),
        max_total_or_terms: 0,
    };
    let mut rng = rng_from(args);
    let cap = if args.has_flag("points") {
        system.gen_cap_via_points(&saved.pk, msk, &query, &policy, &mut rng)?
    } else {
        system.gen_cap(&saved.pk, msk, &query, &policy, &mut rng)?
    };
    let cap = if args.has_flag("finalize") {
        cap.finalize()
    } else {
        cap
    };
    let mut w = Writer::new();
    cap.encode(system.params(), &mut w);
    let bytes = w.finish();
    write_file(out_path, &bytes)?;
    writeln!(
        out,
        "capability for `{query}` written to {out_path} ({} bytes{})",
        bytes.len(),
        if args.has_flag("finalize") {
            ", finalized"
        } else {
            ", delegatable"
        }
    )?;
    Ok(())
}

fn cmd_delegate(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (system, saved) = load_deployment(args.require("deploy")?)?;
    let cap_bytes = fs::read(args.require("cap")?)?;
    let mut r = Reader::new(&cap_bytes);
    let parent = Capability::decode(system.params(), &mut r)
        .map_err(|e| CliError(format!("capability decode: {e}")))?;
    let query = Query::parse(args.require("query")?)?;
    let out_path = args.require("out")?;
    let mut rng = rng_from(args);
    let child = system.delegate_cap(&saved.pk, &parent, &query, &mut rng)?;
    let mut w = Writer::new();
    child.encode(system.params(), &mut w);
    let bytes = w.finish();
    write_file(out_path, &bytes)?;
    writeln!(
        out,
        "delegated capability (AND `{query}`) written to {out_path} ({} bytes)",
        bytes.len()
    )?;
    Ok(())
}

fn cmd_search(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (system, saved) = load_deployment(args.require("deploy")?)?;
    let cap_bytes = fs::read(args.require("cap")?)?;
    let mut r = Reader::new(&cap_bytes);
    let cap = Capability::decode(system.params(), &mut r)
        .map_err(|e| CliError(format!("capability decode: {e}")))?;
    if args.positional.is_empty() {
        return Err(CliError("search needs at least one index file".into()));
    }
    // prepare the capability's Miller lines once for the whole scan
    let prepared = system.prepare_capability(&cap)?;
    let mut matches = 0usize;
    for path in &args.positional {
        let idx_bytes = fs::read(path)?;
        let mut r = Reader::new(&idx_bytes);
        let idx = EncryptedIndex::decode(system.params(), &mut r)
            .map_err(|e| CliError(format!("{path}: index decode: {e}")))?;
        let hit = system.search_prepared(&saved.pk, &prepared, &idx)?;
        if hit {
            matches += 1;
        }
        writeln!(out, "{path}: {}", if hit { "MATCH" } else { "-" })?;
    }
    writeln!(out, "{matches}/{} matched", args.positional.len())?;
    Ok(())
}

fn cmd_transform(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (system, saved) = load_deployment(args.require("deploy")?)?;
    let blinding = saved
        .blinding
        .ok_or_else(|| CliError("not an APKS+ deployment (no proxy secret)".into()))?;
    let in_bytes = fs::read(args.require("in")?)?;
    let mut r = Reader::new(&in_bytes);
    let partial = EncryptedIndex::decode(system.params(), &mut r)
        .map_err(|e| CliError(format!("index decode: {e}")))?;
    let share = ProxyTransformKey {
        r_inv: blinding
            .inv()
            .ok_or_else(|| CliError("degenerate blinding secret".into()))?,
    };
    let full = proxy_transform(&system, &share, &partial);
    let mut w = Writer::new();
    full.encode(system.params(), &mut w);
    let bytes = w.finish();
    let out_path = args.require("out")?;
    write_file(out_path, &bytes)?;
    writeln!(out, "transformed index written to {out_path}")?;
    Ok(())
}

fn cmd_stats(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use apks_authz::TrustedAuthority;
    use apks_cloud::CloudServer;
    use apks_core::{FieldValue, Record, Schema};

    if args.has_flag("overload") {
        return cmd_stats_overload(args, out);
    }
    if args.has_flag("batch") {
        return cmd_stats_batch(args, out);
    }
    if args.has_flag("replication") {
        return cmd_stats_replication(args, out);
    }
    let docs: usize = args.get("docs").and_then(|v| v.parse().ok()).unwrap_or(24);
    let threads: usize = args
        .get("threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut rng = rng_from(args);

    // an in-memory illness/sex deployment: enough to exercise the whole
    // upload → capability → scan path and show what the telemetry layer
    // records for it
    let schema = Schema::builder()
        .flat_field("illness", 1)
        .flat_field("sex", 1)
        .build()?;
    let system = apks_core::ApksSystem::new(apks_curve::CurveParams::fast(), schema);
    let ta = TrustedAuthority::setup(system, &mut rng);
    let server = CloudServer::new(
        ta.system().clone(),
        ta.public_key().clone(),
        ta.ibs_params().clone(),
    );
    server.register_authority("ta");
    let illnesses = ["flu", "diabetes", "cancer"];
    let sexes = ["female", "male"];
    for i in 0..docs {
        let rec = Record::new(vec![
            FieldValue::text(illnesses[i % illnesses.len()]),
            FieldValue::text(sexes[i % sexes.len()]),
        ]);
        server.upload(ta.system().gen_index(ta.public_key(), &rec, &mut rng)?);
    }
    let cap = ta
        .issue_capability(
            &Query::new().equals("illness", "flu"),
            &QueryPolicy::default(),
            &mut rng,
        )
        .map_err(|e| CliError(e.to_string()))?;
    let (hits, stats) = server
        .search_parallel(&cap, threads)
        .map_err(|e| CliError(e.to_string()))?;
    let snap = server.metrics_snapshot();
    if args.has_flag("json") {
        writeln!(out, "{}", snap.to_json())?;
    } else {
        writeln!(
            out,
            "scanned {} docs with {threads} thread(s): {} matched",
            stats.scanned,
            hits.len()
        )?;
        writeln!(out, "{}", snap.render())?;
        // the counter measured at the pairing layer must reproduce the
        // per-scan accounting exactly
        let telemetry = snap.counter("cloud.scan.pairings").unwrap_or(0);
        writeln!(
            out,
            "cross-check: SearchStats.pairings = {} vs telemetry cloud.scan.pairings = {} ({})",
            stats.pairings,
            telemetry,
            if stats.pairings as u64 == telemetry {
                "consistent"
            } else {
                "MISMATCH"
            }
        )?;
    }
    Ok(())
}

/// `apks store-stats --dir <path>`: open an on-disk paged segment
/// store and print its segment ledger and aggregate counters.
///
/// The deployment digest and page size are recovered from the first
/// segment's header (every later segment is then validated against
/// them), so the command works on any store directory without the
/// deployment file at hand.
fn cmd_store_stats(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use apks_store::{PagedStore, SegmentReader, StoreConfig};

    let dir = Path::new(args.require("dir")?);
    let mut segments: Vec<std::path::PathBuf> = fs::read_dir(dir)
        .map_err(|e| CliError(format!("{}: {e}", dir.display())))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("seg-") && name.ends_with(".apks")).then_some(path)
        })
        .collect();
    segments.sort();
    let first = segments
        .first()
        .ok_or_else(|| CliError(format!("{}: no segment files (seg-*.apks)", dir.display())))?;
    let header = *SegmentReader::open(first, None)
        .map_err(|e| CliError(format!("{}: {e}", first.display())))?
        .header();
    let config = StoreConfig {
        page_size: header.page_size as usize,
        ..StoreConfig::default()
    };
    let mut store =
        PagedStore::open(dir, header.schema_digest, config).map_err(|e| CliError(e.to_string()))?;
    let stats = store.stats().map_err(|e| CliError(e.to_string()))?;
    let digest: String = header
        .schema_digest
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect();
    if args.has_flag("json") {
        writeln!(
            out,
            "{{\"dir\":{:?},\"schema_digest\":\"{digest}\",\"page_size\":{},\"segments\":{},\"pages\":{},\"cells\":{},\"puts\":{},\"tombstones\":{},\"indexed_docs\":{},\"bytes\":{},\"torn_tails\":{}}}",
            dir.display().to_string(),
            header.page_size,
            stats.segments,
            stats.pages,
            stats.cells,
            stats.puts,
            stats.tombstones,
            stats.indexed_docs,
            stats.bytes,
            stats.torn_tails
        )?;
        return Ok(());
    }
    writeln!(out, "store:    {}", dir.display())?;
    writeln!(out, "schema:   {digest}")?;
    writeln!(
        out,
        "format:   v{} pages of {} B",
        header.version, header.page_size
    )?;
    writeln!(
        out,
        "segments: {} ({} pages, {} bytes)",
        stats.segments, stats.pages, stats.bytes
    )?;
    writeln!(
        out,
        "cells:    {} ({} puts, {} tombstones)",
        stats.cells, stats.puts, stats.tombstones
    )?;
    writeln!(
        out,
        "indexed:  {} doc(s) point-addressable",
        stats.indexed_docs
    )?;
    writeln!(out, "torn:     {} tail(s) skipped", stats.torn_tails)?;
    Ok(())
}

/// `apks wire-sizes`: instantiate one of each wire type on a
/// representative deployment and print its exact serialized size next
/// to the paper's §VII closed forms.
fn cmd_wire_sizes(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use apks_authz::TrustedAuthority;
    use apks_core::{FieldValue, Record, Schema};
    use apks_wire::protocol::{SearchRequest, SearchResponse};
    use apks_wire::{CiphertextRecord, IngestBatch, MetricsWire, Request, Response, Wire, WireCtx};

    let mut rng = rng_from(args);
    let schema = Schema::builder()
        .flat_field("illness", 1)
        .flat_field("sex", 1)
        .build()?;
    let system = apks_core::ApksSystem::new(apks_curve::CurveParams::fast(), schema);
    let ta = TrustedAuthority::setup(system, &mut rng);
    let ctx = WireCtx::new(apks_curve::CurveParams::fast());

    let n0 = ta.system().n() + 3;
    let point = apks_curve::G1Affine::ENCODED_LEN;
    writeln!(out, "deployment: n0 = {n0}, compressed point = {point} B")?;
    writeln!(
        out,
        "paper \u{a7}VII: ciphertext 65(n0+1) = {} B + Gt element",
        point * (n0 + 1)
    )?;
    writeln!(out)?;

    let rec = Record::new(vec![FieldValue::text("flu"), FieldValue::text("female")]);
    let index = ta.system().gen_index(ta.public_key(), &rec, &mut rng)?;
    let cap = ta
        .issue_capability(
            &Query::new().equals("illness", "flu"),
            &QueryPolicy::default(),
            &mut rng,
        )
        .map_err(|e| CliError(e.to_string()))?;
    let record = CiphertextRecord {
        doc_id: 0,
        index: index.clone(),
    };
    let batch = IngestBatch {
        owner: "owner-a".into(),
        seq: 0,
        records: vec![index],
    };
    let search = SearchRequest {
        id: 0,
        deadline_expires_at: u64::MAX,
        pairing_budget: u64::MAX,
        doc_cost_ticks: 0,
        capability: cap.clone(),
    };
    let response = SearchResponse::default();
    let metrics = MetricsWire(apks_telemetry::MetricsRegistry::new().snapshot());

    let mut row = |name: &str, tag: u8, size: usize, actual: usize| -> Result<(), CliError> {
        debug_assert_eq!(size, actual);
        writeln!(out, "  {name:<22} tag {tag:#04x}  {size:>6} B")?;
        Ok(())
    };
    row(
        "SignedCapability",
        apks_authz::SignedCapability::TAG,
        cap.serialized_size(&ctx),
        cap.to_bytes(&ctx).len(),
    )?;
    row(
        "CiphertextRecord",
        CiphertextRecord::TAG,
        record.serialized_size(&ctx),
        record.to_bytes(&ctx).len(),
    )?;
    row(
        "IngestBatch[1]",
        IngestBatch::TAG,
        batch.serialized_size(&ctx),
        batch.to_bytes(&ctx).len(),
    )?;
    row(
        "SearchRequest",
        SearchRequest::TAG,
        search.serialized_size(&ctx),
        search.to_bytes(&ctx).len(),
    )?;
    row(
        "SearchResponse(empty)",
        SearchResponse::TAG,
        response.serialized_size(&ctx),
        response.to_bytes(&ctx).len(),
    )?;
    row(
        "MetricsWire(empty)",
        MetricsWire::TAG,
        metrics.serialized_size(&ctx),
        metrics.to_bytes(&ctx).len(),
    )?;
    let ping = Request::Ping;
    row(
        "Request::Ping",
        Request::TAG,
        ping.serialized_size(&ctx),
        ping.to_bytes(&ctx).len(),
    )?;
    let pong = Response::Pong;
    row(
        "Response::Pong",
        Response::TAG,
        pong.serialized_size(&ctx),
        pong.to_bytes(&ctx).len(),
    )?;
    writeln!(out)?;
    writeln!(
        out,
        "framing: {} B header (magic {:?} + u32 length), max payload {} B",
        apks_wire::FRAME_HEADER_LEN,
        core::str::from_utf8(&apks_wire::FRAME_MAGIC).unwrap_or("?"),
        apks_wire::MAX_FRAME_LEN
    )?;
    Ok(())
}

/// `apks stats --overload`: replay the deterministic overload scenario
/// and print its admission, brown-out, breaker, and latency telemetry.
fn cmd_stats_overload(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use apks_sim::overload::{run_overload, OverloadConfig};

    let config = OverloadConfig {
        seed: args.get("seed").and_then(|s| s.parse().ok()).unwrap_or(1),
        ..OverloadConfig::default()
    };
    let r = run_overload(&config).map_err(|e| CliError(e.to_string()))?;
    if args.has_flag("json") {
        writeln!(out, "{}", r.metrics.to_json())?;
        return Ok(());
    }
    writeln!(
        out,
        "overload scenario (seed {}): {} arrivals over {} virtual ticks, {} docs",
        config.seed, r.arrivals, r.virtual_ticks, r.docs_stored
    )?;
    writeln!(
        out,
        "admission: {} admitted, {} shed at the queue, {} browned out (max level {}), {} displaced by priority",
        r.admitted, r.shed_queue_full, r.shed_brownout, r.max_brownout_level, r.displaced
    )?;
    writeln!(
        out,
        "degradation: {} deadline-expired, {} budget-exhausted, {} documents left unscanned",
        r.deadline_expired, r.budget_exhausted, r.unscanned_docs
    )?;
    writeln!(out, "circuit breakers:")?;
    for (id, state) in &r.breaker_states {
        writeln!(out, "  {id}: {state}")?;
    }
    writeln!(
        out,
        "p99 time-to-shed {} ticks vs p99 time-to-result {} ticks",
        r.time_to_shed_p99(),
        r.scan_latency_p99()
    )?;
    Ok(())
}

/// `apks stats --batch`: replay the overload scenario in micro-batched
/// admission mode and print the wave engine's `cloud.wave.*` telemetry —
/// wave sizes, capability dedup, and amortized pairings per query.
fn cmd_stats_batch(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use apks_cloud::WaveConfig;
    use apks_sim::overload::{run_overload_batched, OverloadConfig};

    let config = OverloadConfig {
        seed: args.get("seed").and_then(|s| s.parse().ok()).unwrap_or(1),
        ..OverloadConfig::default()
    };
    let wave = WaveConfig::default();
    let r = run_overload_batched(&config, &wave).map_err(|e| CliError(e.to_string()))?;
    if args.has_flag("json") {
        writeln!(out, "{}", r.metrics.to_json())?;
        return Ok(());
    }
    writeln!(
        out,
        "batched overload scenario (seed {}, waves of {} within {} ticks): {} arrivals over {} virtual ticks, {} docs",
        config.seed, wave.max_wave, wave.window_ticks, r.arrivals, r.virtual_ticks, r.docs_stored
    )?;
    writeln!(
        out,
        "admission: {} admitted, {} shed at the queue, {} browned out (max level {}), {} displaced by priority",
        r.admitted, r.shed_queue_full, r.shed_brownout, r.max_brownout_level, r.displaced
    )?;
    writeln!(
        out,
        "degradation: {} deadline-expired, {} budget-exhausted, {} documents left unscanned",
        r.deadline_expired, r.budget_exhausted, r.unscanned_docs
    )?;
    let m = &r.metrics;
    let waves = m.counter("cloud.wave.scans").unwrap_or(0);
    writeln!(
        out,
        "waves: {} dispatched ({} filled, {} window-expired, {} drained)",
        waves,
        m.counter("cloud.wave.flush.full").unwrap_or(0),
        m.counter("cloud.wave.flush.window").unwrap_or(0),
        m.counter("cloud.wave.flush.drain").unwrap_or(0),
    )?;
    if let Some(h) = m.histogram("cloud.wave.size") {
        writeln!(
            out,
            "wave size: mean {} (p99<={}), {} duplicate evaluations shared",
            h.sum / h.count.max(1),
            h.quantile_upper_bound(0.99),
            m.counter("cloud.wave.shared_evals").unwrap_or(0),
        )?;
    }
    if let Some(h) = m.histogram("cloud.wave.amortized_pairings_per_query") {
        writeln!(
            out,
            "amortized pairings per query: mean {} (p99<={}) across {} waves",
            h.sum / h.count.max(1),
            h.quantile_upper_bound(0.99),
            h.count,
        )?;
    }
    writeln!(out, "full wave ledger:")?;
    for (name, metric) in m.entries() {
        if name.starts_with("cloud.wave.") {
            match metric {
                apks_telemetry::Metric::Counter(v) => writeln!(out, "  {name}: {v}")?,
                apks_telemetry::Metric::Histogram(h) => writeln!(
                    out,
                    "  {name}: count {} sum {} p50<={} p99<={}",
                    h.count,
                    h.sum,
                    h.quantile_upper_bound(0.5),
                    h.quantile_upper_bound(0.99),
                )?,
            }
        }
    }
    Ok(())
}

/// `apks stats --replication`: replay the chaos-net scenario — lossy
/// framed link, replicated shards with a forced-open primary breaker,
/// seeded crash sweep — and render the `cloud.replica.*` / `wire.*`
/// counters the replication layer emits.
fn cmd_stats_replication(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use apks_sim::chaos_net::{run_chaos_net, ChaosNetConfig};

    let config = ChaosNetConfig {
        seed: args.get("seed").and_then(|s| s.parse().ok()).unwrap_or(1),
        ..ChaosNetConfig::default()
    };
    let dir = std::env::temp_dir().join(format!("apks-cli-replication-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let r = run_chaos_net(&config, &dir).map_err(|e| CliError(e.to_string()))?;
    let _ = fs::remove_dir_all(&dir);
    if args.has_flag("json") {
        writeln!(out, "{}", r.metrics.to_json())?;
        return Ok(());
    }
    writeln!(
        out,
        "chaos-net scenario (seed {}): {} docs x {} partitions x {} replicas, {} search waves over {} virtual ticks",
        config.seed, r.docs, r.partitions, r.replication, r.searches, r.virtual_ticks
    )?;
    writeln!(
        out,
        "link: {} dropped, {} corrupted, {} duplicated; {} client reconnects, {} ingest retries deduped (exactly-once)",
        r.frames_dropped, r.frames_corrupted, r.frames_duplicated, r.reconnects, r.dedup_hits
    )?;
    writeln!(
        out,
        "failover: {} breaker-forced failovers, {} hits gathered, oracle byte-equal: {}, framed hit sets equal: {}",
        r.failovers, r.hits_total, r.oracle_verified, r.framed_verified
    )?;
    writeln!(
        out,
        "durability: {} crash points, {} acknowledged puts checked, {} lost, {} reopen failures",
        r.crash_points, r.acked_puts_checked, r.acked_puts_lost, r.reopen_failures
    )?;
    writeln!(out, "replication ledger:")?;
    for (name, metric) in r.metrics.entries() {
        if name.starts_with("cloud.replica.") || name.starts_with("wire.") {
            match metric {
                apks_telemetry::Metric::Counter(v) => writeln!(out, "  {name}: {v}")?,
                apks_telemetry::Metric::Histogram(h) => writeln!(
                    out,
                    "  {name}: count {} sum {} p50<={} p99<={}",
                    h.count,
                    h.sum,
                    h.quantile_upper_bound(0.5),
                    h.quantile_upper_bound(0.99),
                )?,
            }
        }
    }
    Ok(())
}

fn cmd_demo(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let mut rng = rng_from(args);
    let schema =
        parse_schema("field age numeric 0 63 4 d=2\nfield sex flat d=1\nfield illness flat d=2")?;
    let system = apks_core::ApksSystem::new(apks_curve::CurveParams::fast(), schema);
    let (pk, msk) = system.setup(&mut rng);
    writeln!(out, "setup done (n = {})", system.n())?;
    let people = [
        "age=25,sex=female,illness=diabetes",
        "age=61,sex=male,illness=diabetes",
        "age=18,sex=female,illness=diabetes",
    ];
    let indexes: Vec<_> = people
        .iter()
        .map(|p| {
            let r = parse_record(system.schema(), p).unwrap();
            system.gen_index(&pk, &r, &mut rng).unwrap()
        })
        .collect();
    let q = Query::parse("age in [16,31] and sex = female and illness = diabetes")?;
    let cap = system.gen_cap(&pk, &msk, &q, &QueryPolicy::default(), &mut rng)?;
    for (p, idx) in people.iter().zip(&indexes) {
        let hit = system.search(&pk, &cap, idx)?;
        writeln!(out, "  {p}: {}", if hit { "MATCH" } else { "-" })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_strs(args: &[&str]) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&owned, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("apks-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn full_cli_flow() {
        let dir = tmpdir("flow");
        let schema = dir.join("s.schema");
        std::fs::write(
            &schema,
            "field age numeric 0 15 4 d=2\nfield sex flat d=1\n",
        )
        .unwrap();
        let deploy = dir.join("d.apks");
        let out = run_strs(&[
            "setup",
            "--schema",
            schema.to_str().unwrap(),
            "--out",
            deploy.to_str().unwrap(),
            "--seed",
            "1",
        ])
        .unwrap();
        assert!(out.contains("deployment written"));

        let out = run_strs(&["inspect", deploy.to_str().unwrap()]).unwrap();
        assert!(out.contains("APKS"));
        assert!(out.contains("age"));

        let idx_a = dir.join("a.idx");
        run_strs(&[
            "gen-index",
            "--deploy",
            deploy.to_str().unwrap(),
            "--record",
            "age=6,sex=female",
            "--out",
            idx_a.to_str().unwrap(),
            "--seed",
            "2",
        ])
        .unwrap();
        let idx_b = dir.join("b.idx");
        run_strs(&[
            "gen-index",
            "--deploy",
            deploy.to_str().unwrap(),
            "--record",
            "age=12,sex=male",
            "--out",
            idx_b.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .unwrap();

        let cap = dir.join("cap.bin");
        run_strs(&[
            "gen-cap",
            "--deploy",
            deploy.to_str().unwrap(),
            "--query",
            "age in [4,7] and sex = female",
            "--out",
            cap.to_str().unwrap(),
            "--seed",
            "4",
        ])
        .unwrap();

        let out = run_strs(&[
            "search",
            "--deploy",
            deploy.to_str().unwrap(),
            "--cap",
            cap.to_str().unwrap(),
            idx_a.to_str().unwrap(),
            idx_b.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("a.idx: MATCH"));
        assert!(out.contains("b.idx: -"));
        assert!(out.contains("1/2 matched"));

        // delegation narrows further
        let cap2 = dir.join("cap2.bin");
        run_strs(&[
            "delegate",
            "--deploy",
            deploy.to_str().unwrap(),
            "--cap",
            cap.to_str().unwrap(),
            "--query",
            "age = 6",
            "--out",
            cap2.to_str().unwrap(),
            "--seed",
            "5",
        ])
        .unwrap();
        let out = run_strs(&[
            "search",
            "--deploy",
            deploy.to_str().unwrap(),
            "--cap",
            cap2.to_str().unwrap(),
            idx_a.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("MATCH"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn plus_flow_with_transform() {
        let dir = tmpdir("plus");
        let schema = dir.join("s.schema");
        std::fs::write(&schema, "field kw flat d=1\n").unwrap();
        let deploy = dir.join("d.apks");
        run_strs(&[
            "setup",
            "--schema",
            schema.to_str().unwrap(),
            "--out",
            deploy.to_str().unwrap(),
            "--plus",
            "--seed",
            "1",
        ])
        .unwrap();
        let out = run_strs(&["inspect", deploy.to_str().unwrap()]).unwrap();
        assert!(out.contains("APKS+"));

        let partial = dir.join("p.idx");
        run_strs(&[
            "gen-index",
            "--deploy",
            deploy.to_str().unwrap(),
            "--record",
            "kw=x",
            "--out",
            partial.to_str().unwrap(),
            "--seed",
            "2",
        ])
        .unwrap();
        let cap = dir.join("cap.bin");
        run_strs(&[
            "gen-cap",
            "--deploy",
            deploy.to_str().unwrap(),
            "--query",
            "kw = x",
            "--out",
            cap.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .unwrap();
        // untransformed: no match
        let out = run_strs(&[
            "search",
            "--deploy",
            deploy.to_str().unwrap(),
            "--cap",
            cap.to_str().unwrap(),
            partial.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("0/1 matched"));
        // transform, then it matches
        let full = dir.join("f.idx");
        run_strs(&[
            "transform",
            "--deploy",
            deploy.to_str().unwrap(),
            "--in",
            partial.to_str().unwrap(),
            "--out",
            full.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_strs(&[
            "search",
            "--deploy",
            deploy.to_str().unwrap(),
            "--cap",
            cap.to_str().unwrap(),
            full.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("1/1 matched"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn demo_runs() {
        let out = run_strs(&["demo", "--seed", "9"]).unwrap();
        assert!(out.contains("MATCH"));
    }

    #[test]
    fn stats_reports_consistent_pairing_counts() {
        let out = run_strs(&["stats", "--docs", "6", "--threads", "2", "--seed", "11"]).unwrap();
        assert!(out.contains("scanned 6 docs"));
        assert!(out.contains("cloud.scan.pairings"));
        assert!(out.contains("consistent"), "got:\n{out}");
        assert!(!out.contains("MISMATCH"));
    }

    #[test]
    fn stats_overload_reports_breakers_and_sheds() {
        let out = run_strs(&["stats", "--overload", "--seed", "1"]).unwrap();
        assert!(out.contains("overload scenario (seed 1)"));
        assert!(out.contains("circuit breakers:"));
        assert!(out.contains("proxy-0: "));
        assert!(out.contains("p99 time-to-shed"));
        // the same seed replays identically
        let again = run_strs(&["stats", "--overload", "--seed", "1"]).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn stats_batch_reports_wave_ledger() {
        let out = run_strs(&["stats", "--batch", "--seed", "1"]).unwrap();
        assert!(out.contains("batched overload scenario (seed 1"));
        assert!(out.contains("waves: "));
        assert!(out.contains("amortized pairings per query"));
        assert!(out.contains("cloud.wave.scans"));
        assert!(out.contains("cloud.wave.size"));
        assert!(
            !out.contains("cloud.scans"),
            "batched mode must not touch the solo-scan ledger"
        );
        // the same seed replays identically
        let again = run_strs(&["stats", "--batch", "--seed", "1"]).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn store_stats_reads_a_store_directory() {
        use apks_store::{PagedStore, StoreConfig};

        let dir = tmpdir("store-stats");
        let config = StoreConfig {
            page_size: 256,
            segment_max_bytes: 1024,
        };
        let mut store = PagedStore::open(&dir, [5u8; 32], config).unwrap();
        for doc in 0..20u64 {
            store.put(doc, vec![0xAB; 32]).unwrap();
        }
        store.delete(3).unwrap();
        store.seal().unwrap();

        let out = run_strs(&["store-stats", "--dir", dir.to_str().unwrap()]).unwrap();
        assert!(
            out.contains("cells:    21 (20 puts, 1 tombstones)"),
            "got:\n{out}"
        );
        assert!(out.contains("pages of 256 B"));
        // 20 puts minus the one tombstoned doc stay point-addressable
        assert!(
            out.contains("indexed:  19 doc(s) point-addressable"),
            "got:\n{out}"
        );
        assert!(out.contains("torn:     0 tail(s) skipped"));

        let json = run_strs(&["store-stats", "--dir", dir.to_str().unwrap(), "--json"]).unwrap();
        assert!(json.trim_start().starts_with('{'));
        assert!(json.contains("\"puts\":20"));
        assert!(json.contains("\"tombstones\":1"));
        assert!(json.contains("\"indexed_docs\":19"));
        assert!(json.contains("\"page_size\":256"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn store_stats_rejects_a_directory_without_segments() {
        let dir = tmpdir("store-stats-empty");
        let err = run_strs(&["store-stats", "--dir", dir.to_str().unwrap()]).unwrap_err();
        assert!(err.0.contains("no segment files"), "got: {}", err.0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stats_json_is_machine_readable() {
        let out = run_strs(&["stats", "--docs", "4", "--seed", "11", "--json"]).unwrap();
        assert!(out.trim_start().starts_with('{'));
        assert!(out.contains("\"counters\""));
        assert!(out.contains("\"cloud.scan.pairings\""));
        assert!(out.contains("\"histograms\""));
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_strs(&[]).is_err());
        assert!(run_strs(&["frobnicate"]).is_err());
        assert!(run_strs(&["setup", "--schema"]).is_err()); // missing value
        assert!(run_strs(&["setup", "--out", "x"]).is_err()); // missing schema
        assert!(run_strs(&["inspect", "/nonexistent/path"]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let out = run_strs(&["help"]).unwrap();
        assert!(out.contains("usage: apks"));
    }
}
